package cloud

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"snip/internal/memo"
	"snip/internal/obs"
	"snip/internal/pfi"
	"snip/internal/trace"
	"snip/internal/units"
)

// Service exposes the profiler fleet over HTTP — the device/cloud split
// of Fig. 10. Endpoints:
//
//	POST /v1/upload?game=G&seed=S   body: events-only log (trace gob)
//	POST /v1/upload-batch?game=G    body: gzip'd multi-session batch
//	POST /v1/rebuild?game=G         retrain PFI, build a new table
//	GET  /v1/table?game=G           latest OTA table (gob)
//	GET  /v1/status?game=G          text status
//	GET  /v1/metrics                Prometheus text exposition
type Service struct {
	mu        sync.Mutex
	cfg       pfi.Config
	profilers map[string]*Profiler
	reg       *obs.Registry
	met       *serviceMetrics
	log       *slog.Logger
}

// serviceMetrics holds the cloud-side series: business counters plus
// per-endpoint request accounting fed by the latency middleware.
type serviceMetrics struct {
	uploads      *obs.Counter
	batches      *obs.Counter
	batchBytes   *obs.Counter
	records      *obs.Counter
	rebuilds     *obs.Counter
	rebuildFails *obs.Counter
	tablesServed *obs.Counter

	requests  map[string]*obs.Counter   // by endpoint
	errors    map[string]*obs.Counter   // by endpoint, status >= 400
	latencyNS map[string]*obs.Histogram // by endpoint
}

// endpoints the middleware tracks; fixed so every series exists from
// the first scrape rather than appearing after first use.
var endpointNames = []string{"upload", "upload-batch", "rebuild", "table", "status", "metrics"}

func newServiceMetrics(reg *obs.Registry) *serviceMetrics {
	m := &serviceMetrics{
		uploads:      reg.Counter("snip_cloud_uploads_total", "event logs ingested (batched sessions count individually)"),
		batches:      reg.Counter("snip_cloud_upload_batches_total", "multi-session batch uploads ingested"),
		batchBytes:   reg.Counter("snip_cloud_upload_batch_bytes_total", "compressed bytes received on the batch endpoint"),
		records:      reg.Counter("snip_cloud_records_total", "profile records reconstructed from uploads"),
		rebuilds:     reg.Counter("snip_cloud_rebuilds_total", "PFI rebuilds completed"),
		rebuildFails: reg.Counter("snip_cloud_rebuild_failures_total", "PFI rebuilds that errored"),
		tablesServed: reg.Counter("snip_cloud_tables_served_total", "OTA table downloads served"),
		requests:     make(map[string]*obs.Counter, len(endpointNames)),
		errors:       make(map[string]*obs.Counter, len(endpointNames)),
		latencyNS:    make(map[string]*obs.Histogram, len(endpointNames)),
	}
	for _, ep := range endpointNames {
		m.requests[ep] = reg.Counter(
			`snip_cloud_requests_total{endpoint="`+ep+`"}`, "HTTP requests received")
		m.errors[ep] = reg.Counter(
			`snip_cloud_request_errors_total{endpoint="`+ep+`"}`, "HTTP requests answered with status >= 400")
		m.latencyNS[ep] = reg.Histogram(
			`snip_cloud_request_ns{endpoint="`+ep+`"}`, "request handling wall time in nanoseconds", obs.NanoBuckets())
	}
	return m
}

// NewService builds an empty service; profilers are created per game on
// first upload. Every service owns a metrics registry (see Metrics)
// exposed at GET /v1/metrics.
func NewService(cfg pfi.Config) *Service {
	reg := obs.NewRegistry()
	cfg.Obs = reg // rebuild-time PFI searches surface in /v1/metrics
	return &Service{
		cfg:       cfg,
		profilers: make(map[string]*Profiler),
		reg:       reg,
		met:       newServiceMetrics(reg),
	}
}

// Metrics returns the service's registry, for embedding its series into
// a larger exposition or snapshotting in tests.
func (s *Service) Metrics() *obs.Registry { return s.reg }

// SetLogger attaches a structured logger for request and rebuild
// events. Nil (the default) disables logging.
func (s *Service) SetLogger(l *slog.Logger) { s.log = l }

func (s *Service) profiler(game string) *Profiler {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.profilers[game]
	if !ok {
		p = NewProfiler(game, s.cfg)
		s.profilers[game] = p
	}
	return p
}

// statusWriter captures the response code for the middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request counting, latency measurement
// and structured logging for one endpoint.
func (s *Service) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		elapsed := time.Since(start)
		s.met.requests[endpoint].Inc()
		s.met.latencyNS[endpoint].Observe(elapsed.Nanoseconds())
		if sw.code >= 400 {
			s.met.errors[endpoint].Inc()
		}
		if s.log != nil {
			s.log.Info("request",
				"endpoint", endpoint, "method", r.Method,
				"game", r.URL.Query().Get("game"),
				"status", sw.code, "elapsed", elapsed)
		}
	}
}

// Handler returns the HTTP handler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/upload", s.instrument("upload", s.handleUpload))
	mux.HandleFunc("POST /v1/upload-batch", s.instrument("upload-batch", s.handleUploadBatch))
	mux.HandleFunc("POST /v1/rebuild", s.instrument("rebuild", s.handleRebuild))
	mux.HandleFunc("GET /v1/table", s.instrument("table", s.handleTable))
	mux.HandleFunc("GET /v1/status", s.instrument("status", s.handleStatus))
	mux.HandleFunc("GET /v1/metrics", s.instrument("metrics", s.handleMetrics))
	return mux
}

// gameParam extracts and validates the required ?game= query parameter.
// On a missing value it writes a 400 and returns ok=false; every
// endpoint that keys on a game shares this check.
func gameParam(w http.ResponseWriter, r *http.Request) (string, bool) {
	game := r.URL.Query().Get("game")
	if game == "" {
		http.Error(w, "missing game", http.StatusBadRequest)
		return "", false
	}
	return game, true
}

func (s *Service) handleUpload(w http.ResponseWriter, r *http.Request) {
	game, ok := gameParam(w, r)
	if !ok {
		return
	}
	seed, err := strconv.ParseUint(r.URL.Query().Get("seed"), 10, 64)
	if err != nil {
		http.Error(w, "bad seed: "+err.Error(), http.StatusBadRequest)
		return
	}
	log, err := trace.DecodeEventsOnly(r.Body)
	if err != nil {
		http.Error(w, "bad log: "+err.Error(), http.StatusBadRequest)
		return
	}
	p := s.profiler(game)
	before := p.ProfileLen()
	if err := p.IngestLog(seed, log); err != nil {
		http.Error(w, "replay: "+err.Error(), http.StatusInternalServerError)
		return
	}
	after := p.ProfileLen()
	s.met.uploads.Inc()
	s.met.records.Add(int64(after - before))
	fmt.Fprintf(w, "ok records=%d\n", after)
}

// handleUploadBatch ingests a gzip'd multi-session batch: the fleet's
// bulk path. Sessions replay in parallel on the profiler's emulator
// fan-out and merge in upload order, so the resulting profile is
// byte-identical to uploading the sessions one at a time.
func (s *Service) handleUploadBatch(w http.ResponseWriter, r *http.Request) {
	game, ok := gameParam(w, r)
	if !ok {
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	batch, err := trace.DecodeBatch(bytes.NewReader(body))
	if err != nil {
		http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	if batch.Game != "" && batch.Game != game {
		http.Error(w, fmt.Sprintf("batch game %q != %q", batch.Game, game), http.StatusBadRequest)
		return
	}
	if len(batch.Sessions) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	logs := make([]SessionLog, len(batch.Sessions))
	for i, se := range batch.Sessions {
		logs[i] = SessionLog{Seed: se.Seed, Log: se.Log}
	}
	p := s.profiler(game)
	before := p.ProfileLen()
	if err := p.IngestLogs(0, logs); err != nil {
		http.Error(w, "replay: "+err.Error(), http.StatusInternalServerError)
		return
	}
	after := p.ProfileLen()
	s.met.uploads.Add(int64(len(logs)))
	s.met.batches.Inc()
	s.met.batchBytes.Add(int64(len(body)))
	s.met.records.Add(int64(after - before))
	fmt.Fprintf(w, "ok sessions=%d records=%d\n", len(logs), after)
}

func (s *Service) handleRebuild(w http.ResponseWriter, r *http.Request) {
	game, ok := gameParam(w, r)
	if !ok {
		return
	}
	up, err := s.profiler(game).Rebuild()
	if err != nil {
		s.met.rebuildFails.Inc()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.met.rebuilds.Inc()
	s.reg.Gauge(`snip_cloud_table_version{game="`+game+`"}`,
		"latest table version built per game").Set(int64(up.Version))
	if s.log != nil {
		s.log.Info("rebuild", "game", game, "version", up.Version,
			"rows", up.Table.Rows(), "coverage", up.Metrics.Coverage)
	}
	fmt.Fprintf(w, "ok version=%d rows=%d size=%v\n", up.Version, up.Table.Rows(), up.Table.Size())
}

func (s *Service) handleTable(w http.ResponseWriter, r *http.Request) {
	game, ok := gameParam(w, r)
	if !ok {
		return
	}
	up := s.profiler(game).Latest()
	if up == nil {
		http.Error(w, "no table built yet", http.StatusNotFound)
		return
	}
	var buf bytes.Buffer
	if err := EncodeUpdate(&buf, up); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Snip-Version", strconv.Itoa(up.Version))
	_, _ = w.Write(buf.Bytes())
	s.met.tablesServed.Inc()
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	game, ok := gameParam(w, r)
	if !ok {
		return
	}
	p := s.profiler(game)
	fmt.Fprintf(w, "game=%s records=%d", game, p.ProfileLen())
	if up := p.Latest(); up != nil {
		fmt.Fprintf(w, " version=%d rows=%d size=%v coverage=%.1f%%",
			up.Version, up.Table.Rows(), up.Table.Size(), 100*up.Metrics.Coverage)
	}
	fmt.Fprintln(w)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// wireUpdate mirrors TableUpdate with the table in wire form.
type wireUpdate struct {
	Game           string
	Version        int
	Table          *memo.Wire
	Metrics        pfi.Metrics
	ProfileRecords int
}

// EncodeUpdate writes a TableUpdate as a gob stream.
func EncodeUpdate(w io.Writer, up *TableUpdate) error {
	return gob.NewEncoder(w).Encode(wireUpdate{
		Game: up.Game, Version: up.Version, Table: up.Table.Export(),
		Metrics: up.Metrics, ProfileRecords: up.ProfileRecords,
	})
}

// DecodeUpdate reads a TableUpdate written by EncodeUpdate.
func DecodeUpdate(r io.Reader) (*TableUpdate, error) {
	var wu wireUpdate
	if err := gob.NewDecoder(r).Decode(&wu); err != nil {
		return nil, fmt.Errorf("cloud: decode update: %w", err)
	}
	t := memo.FromWire(wu.Table)
	return &TableUpdate{
		Game: wu.Game, Version: wu.Version, Selection: t.Selection(), Table: t,
		Metrics: wu.Metrics, ProfileRecords: wu.ProfileRecords,
	}, nil
}

// DefaultClientTimeout bounds every request made by a NewClient-built
// client; table rebuilds dominate, and even large profiles finish well
// inside it.
const DefaultClientTimeout = 30 * time.Second

// RetryPolicy bounds the client's retry loop for transient failures
// (network errors and 5xx responses). Backoff is exponential with full
// jitter: attempt n sleeps uniform(0, min(MaxDelay, BaseDelay·2ⁿ⁻¹)].
// 4xx responses never retry — they are the caller's bug, and retrying
// them would just triple the error latency.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first.
	// <= 1 disables retries.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep.
	MaxDelay time.Duration
}

// DefaultRetryPolicy is what NewClient installs: up to 3 tries with
// 50 ms base backoff capped at 2 s — enough to ride out a profiler
// restart without turning a dead cloud into a half-minute stall.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
}

// backoff returns the sleep before retry attempt n (n >= 1).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if p.MaxDelay > 0 && (d > p.MaxDelay || d <= 0) {
		d = p.MaxDelay
	}
	if d <= 0 {
		return 0
	}
	return time.Duration(rand.Int64N(int64(d))) + 1
}

// Client is the device-side counterpart: upload logs (singly or in
// gzip'd batches), request rebuilds, fetch tables. The underlying
// transport keeps connections alive and pools them per host, so a fleet
// of devices sharing one Client multiplexes over a handful of sockets
// instead of handshaking per request. Safe for concurrent use.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// Retry bounds the transient-failure retry loop (see RetryPolicy).
	Retry RetryPolicy

	// retries counts retry attempts when metrics are attached.
	retries *obs.Counter
}

// NewClient builds a client for the given base URL (e.g.
// "http://127.0.0.1:8370"). The underlying HTTP client carries
// DefaultClientTimeout and a pooled keep-alive transport sized for
// fleet fan-in; replace c.HTTP to tune it.
func NewClient(baseURL string) *Client {
	tr := &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
	}
	return &Client{
		BaseURL: baseURL,
		HTTP:    &http.Client{Timeout: DefaultClientTimeout, Transport: tr},
		Retry:   DefaultRetryPolicy(),
	}
}

// SetMetrics attaches an observability registry; the client then counts
// retry attempts in snip_cloud_client_retries_total. Nil detaches.
func (c *Client) SetMetrics(reg *obs.Registry) {
	c.retries = reg.Counter("snip_cloud_client_retries_total",
		"client requests retried after a transient failure")
}

// endpoint assembles BaseURL + path + escaped query parameters.
func (c *Client) endpoint(path string, q url.Values) string {
	u := c.BaseURL + path
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	return u
}

// do issues one request with bounded retry on transient failures. body
// may be nil; it is re-read from the byte slice on every attempt, which
// is why the request body is materialized rather than streamed.
func (c *Client) do(method, u, contentType string, body []byte) (*http.Response, error) {
	pol := c.Retry
	if pol.MaxAttempts <= 0 {
		pol.MaxAttempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
			time.Sleep(pol.backoff(attempt))
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, u, rd)
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.HTTP.Do(req)
		if err != nil {
			lastErr = err // transport error: transient, retry
			continue
		}
		if resp.StatusCode >= 500 {
			lastErr = errFromResponse(resp)
			resp.Body.Close()
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("cloud: giving up after %d attempts: %w", pol.MaxAttempts, lastErr)
}

// Upload sends an events-only log for a session seed.
func (c *Client) Upload(game string, seed uint64, log *trace.EventLog) error {
	var buf bytes.Buffer
	if err := trace.EncodeEventsOnly(&buf, log); err != nil {
		return err
	}
	u := c.endpoint("/v1/upload", url.Values{
		"game": {game}, "seed": {strconv.FormatUint(seed, 10)},
	})
	resp, err := c.do(http.MethodPost, u, "application/octet-stream", buf.Bytes())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return errFromResponse(resp)
}

// UploadBatch sends many sessions in one gzip'd request — the fleet's
// bulk ingest path. Returns the compressed bytes put on the wire.
func (c *Client) UploadBatch(game string, sessions []trace.SessionEvents) (units.Size, error) {
	var buf bytes.Buffer
	if err := trace.EncodeBatch(&buf, &trace.SessionBatch{Game: game, Sessions: sessions}); err != nil {
		return 0, err
	}
	u := c.endpoint("/v1/upload-batch", url.Values{"game": {game}})
	resp, err := c.do(http.MethodPost, u, "application/octet-stream", buf.Bytes())
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return units.Size(buf.Len()), errFromResponse(resp)
}

// Rebuild asks the cloud to retrain and build a fresh table.
func (c *Client) Rebuild(game string) error {
	u := c.endpoint("/v1/rebuild", url.Values{"game": {game}})
	resp, err := c.do(http.MethodPost, u, "text/plain", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return errFromResponse(resp)
}

// FetchTable downloads the latest OTA table.
func (c *Client) FetchTable(game string) (*TableUpdate, error) {
	u := c.endpoint("/v1/table", url.Values{"game": {game}})
	resp, err := c.do(http.MethodGet, u, "", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := errFromResponse(resp); err != nil {
		return nil, err
	}
	return DecodeUpdate(resp.Body)
}

func errFromResponse(resp *http.Response) error {
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
	return fmt.Errorf("cloud: %s: %s", resp.Status, bytes.TrimSpace(body))
}
