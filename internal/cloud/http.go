package cloud

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"snip/internal/memo"
	"snip/internal/pfi"
	"snip/internal/trace"
)

// Service exposes the profiler fleet over HTTP — the device/cloud split
// of Fig. 10. Endpoints:
//
//	POST /v1/upload?game=G&seed=S   body: events-only log (trace gob)
//	POST /v1/rebuild?game=G         retrain PFI, build a new table
//	GET  /v1/table?game=G           latest OTA table (gob)
//	GET  /v1/status?game=G          text status
type Service struct {
	mu        sync.Mutex
	cfg       pfi.Config
	profilers map[string]*Profiler
}

// NewService builds an empty service; profilers are created per game on
// first upload.
func NewService(cfg pfi.Config) *Service {
	return &Service{cfg: cfg, profilers: make(map[string]*Profiler)}
}

func (s *Service) profiler(game string) *Profiler {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.profilers[game]
	if !ok {
		p = NewProfiler(game, s.cfg)
		s.profilers[game] = p
	}
	return p
}

// Handler returns the HTTP handler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/upload", s.handleUpload)
	mux.HandleFunc("POST /v1/rebuild", s.handleRebuild)
	mux.HandleFunc("GET /v1/table", s.handleTable)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	return mux
}

func (s *Service) handleUpload(w http.ResponseWriter, r *http.Request) {
	game := r.URL.Query().Get("game")
	if game == "" {
		http.Error(w, "missing game", http.StatusBadRequest)
		return
	}
	seed, err := strconv.ParseUint(r.URL.Query().Get("seed"), 10, 64)
	if err != nil {
		http.Error(w, "bad seed: "+err.Error(), http.StatusBadRequest)
		return
	}
	log, err := trace.DecodeEventsOnly(r.Body)
	if err != nil {
		http.Error(w, "bad log: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.profiler(game).IngestLog(seed, log); err != nil {
		http.Error(w, "replay: "+err.Error(), http.StatusInternalServerError)
		return
	}
	fmt.Fprintf(w, "ok records=%d\n", s.profiler(game).ProfileLen())
}

func (s *Service) handleRebuild(w http.ResponseWriter, r *http.Request) {
	game := r.URL.Query().Get("game")
	up, err := s.profiler(game).Rebuild()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	fmt.Fprintf(w, "ok version=%d rows=%d size=%v\n", up.Version, up.Table.Rows(), up.Table.Size())
}

func (s *Service) handleTable(w http.ResponseWriter, r *http.Request) {
	game := r.URL.Query().Get("game")
	up := s.profiler(game).Latest()
	if up == nil {
		http.Error(w, "no table built yet", http.StatusNotFound)
		return
	}
	var buf bytes.Buffer
	if err := EncodeUpdate(&buf, up); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Snip-Version", strconv.Itoa(up.Version))
	_, _ = w.Write(buf.Bytes())
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	game := r.URL.Query().Get("game")
	p := s.profiler(game)
	fmt.Fprintf(w, "game=%s records=%d", game, p.ProfileLen())
	if up := p.Latest(); up != nil {
		fmt.Fprintf(w, " version=%d rows=%d size=%v coverage=%.1f%%",
			up.Version, up.Table.Rows(), up.Table.Size(), 100*up.Metrics.Coverage)
	}
	fmt.Fprintln(w)
}

// wireUpdate mirrors TableUpdate with the table in wire form.
type wireUpdate struct {
	Game           string
	Version        int
	Table          *memo.Wire
	Metrics        pfi.Metrics
	ProfileRecords int
}

// EncodeUpdate writes a TableUpdate as a gob stream.
func EncodeUpdate(w io.Writer, up *TableUpdate) error {
	return gob.NewEncoder(w).Encode(wireUpdate{
		Game: up.Game, Version: up.Version, Table: up.Table.Export(),
		Metrics: up.Metrics, ProfileRecords: up.ProfileRecords,
	})
}

// DecodeUpdate reads a TableUpdate written by EncodeUpdate.
func DecodeUpdate(r io.Reader) (*TableUpdate, error) {
	var wu wireUpdate
	if err := gob.NewDecoder(r).Decode(&wu); err != nil {
		return nil, fmt.Errorf("cloud: decode update: %w", err)
	}
	t := memo.FromWire(wu.Table)
	return &TableUpdate{
		Game: wu.Game, Version: wu.Version, Selection: t.Selection(), Table: t,
		Metrics: wu.Metrics, ProfileRecords: wu.ProfileRecords,
	}, nil
}

// Client is the device-side counterpart: upload logs, request rebuilds,
// fetch tables.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient builds a client for the given base URL (e.g.
// "http://127.0.0.1:8370").
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: http.DefaultClient}
}

// Upload sends an events-only log for a session seed.
func (c *Client) Upload(game string, seed uint64, log *trace.EventLog) error {
	var buf bytes.Buffer
	if err := trace.EncodeEventsOnly(&buf, log); err != nil {
		return err
	}
	url := fmt.Sprintf("%s/v1/upload?game=%s&seed=%d", c.BaseURL, game, seed)
	resp, err := c.HTTP.Post(url, "application/octet-stream", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return errFromResponse(resp)
}

// Rebuild asks the cloud to retrain and build a fresh table.
func (c *Client) Rebuild(game string) error {
	url := fmt.Sprintf("%s/v1/rebuild?game=%s", c.BaseURL, game)
	resp, err := c.HTTP.Post(url, "text/plain", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return errFromResponse(resp)
}

// FetchTable downloads the latest OTA table.
func (c *Client) FetchTable(game string) (*TableUpdate, error) {
	url := fmt.Sprintf("%s/v1/table?game=%s", c.BaseURL, game)
	resp, err := c.HTTP.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := errFromResponse(resp); err != nil {
		return nil, err
	}
	return DecodeUpdate(resp.Body)
}

func errFromResponse(resp *http.Response) error {
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
	return fmt.Errorf("cloud: %s: %s", resp.Status, bytes.TrimSpace(body))
}
