package cloud

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"net/http/pprof"
	"net/url"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"snip/internal/memo"
	"snip/internal/obs"
	"snip/internal/pfi"
	"snip/internal/trace"
	"snip/internal/units"
)

// Service exposes the profiler fleet over HTTP — the device/cloud split
// of Fig. 10. Endpoints:
//
//	POST /v1/upload?game=G&seed=S   body: events-only log (trace gob)
//	POST /v1/upload-batch?game=G    body: gzip'd multi-session batch
//	POST /v1/rebuild?game=G         retrain PFI, build a new table
//	GET  /v1/table?game=G           latest OTA table (gob)
//	GET  /v1/status?game=G          text status
//	GET  /v1/metrics                Prometheus text exposition
//	GET  /v1/healthz                JSON health/SLO verdict
//	GET  /v1/tracez                 recent ingest spans (JSON)
//	POST /v1/guard                  fleet guard status report
//	POST /v1/telemetry              SNIPTEL1 telemetry batch ingest
//	GET  /v1/fleetz                 fleet telemetry rollups (JSON)
//	GET  /v1/energyz                fleet energy rollups (JSON)
//	GET  /v1/shardz                 shard ownership/queue view (JSON)
//	GET  /v1/overloadz              admission/overload ledger (JSON)
//	GET  /debug/pprof/*             net/http/pprof profiles
//
// Requests carrying an X-Snip-Trace header (see obs.TraceHeader) are
// linked into the caller's distributed trace: the middleware records a
// cloud-side ingest span under the device-side parent and attaches the
// trace ID as the latency histogram's bucket exemplar, so one trace ID
// follows an event chain from device dispatch to cloud ingest.
type Service struct {
	mu      sync.Mutex
	cfg     pfi.Config
	shards  []*shard
	guards  map[string]GuardStatus
	reg     *obs.Registry
	met     *serviceMetrics
	tel     *telemetryAggregator
	adm     *admission
	spans   *obs.SpanBuffer
	started time.Time
	log     *slog.Logger
	legacy  bool

	// deltaCap bounds each game's retained delta chain; shardWorkers is
	// the replay fan-out each shard's ingest jobs get (the worker budget
	// divided across shards).
	deltaCap     int
	shardWorkers int
	wg           sync.WaitGroup
	closeOnce    sync.Once
}

// Ingest body limits: requests are bounded before any decode work, so a
// hostile or corrupted upload costs a bounded read, never an unbounded
// allocation. The decoded cap is what stops a gzip bomb — a few-KiB
// compressed body that inflates to tens of MiB dies at the cap with a
// 413, not in the gob decoder's allocator.
const (
	// MaxUploadBytes bounds a single-session events-only upload.
	MaxUploadBytes = 4 << 20
	// MaxBatchBytes bounds a batch upload's compressed body.
	MaxBatchBytes = 8 << 20
	// MaxBatchDecodedBytes bounds the batch's decompressed size.
	MaxBatchDecodedBytes = 32 << 20
)

// serviceMetrics holds the cloud-side series: business counters plus
// per-endpoint request accounting fed by the latency middleware.
type serviceMetrics struct {
	uploads      *obs.Counter
	batches      *obs.Counter
	batchBytes   *obs.Counter
	records      *obs.Counter
	rebuilds     *obs.Counter
	rebuildFails *obs.Counter
	tablesServed *obs.Counter
	// Deterministic ingest rejections: corrupt bodies (checksum/parse),
	// oversized ones (body or decoded-size cap), and trailerless batches
	// (the previous wire release's framing — counted apart from genuine
	// corruption so a not-fully-upgraded fleet shows up in rollout
	// dashboards instead of hiding inside the corrupt series).
	rejectedCorrupt     *obs.Counter
	rejectedOversize    *obs.Counter
	rejectedTrailerless *obs.Counter
	// Telemetry ingest accounting; dropped counts records rejected by
	// the aggregator's game cap.
	telemetryBatches *obs.Counter
	telemetryRecords *obs.Counter
	telemetryDropped *obs.Counter

	requests  map[string]*obs.Counter   // by endpoint
	errors    map[string]*obs.Counter   // by endpoint, status >= 400
	latencyNS map[string]*obs.Histogram // by endpoint
	spanNames map[string]string         // by endpoint: "cloud.<ep>", pre-built
}

// endpoints the middleware tracks; fixed so every series exists from
// the first scrape rather than appearing after first use.
var endpointNames = []string{"upload", "upload-batch", "rebuild", "table", "update", "status", "metrics", "healthz", "tracez", "guard", "telemetry", "fleetz", "shardz", "energyz", "overloadz"}

// ingestEndpoints are the ones whose error rate feeds the /v1/healthz
// verdict — the data-path endpoints, not the introspection ones.
var ingestEndpoints = []string{"upload", "upload-batch", "rebuild", "table", "update", "telemetry"}

func newServiceMetrics(reg *obs.Registry) *serviceMetrics {
	m := &serviceMetrics{
		uploads:      reg.Counter("snip_cloud_uploads_total", "event logs ingested (batched sessions count individually)"),
		batches:      reg.Counter("snip_cloud_upload_batches_total", "multi-session batch uploads ingested"),
		batchBytes:   reg.Counter("snip_cloud_upload_batch_bytes_total", "compressed bytes received on the batch endpoint"),
		records:      reg.Counter("snip_cloud_records_total", "profile records reconstructed from uploads"),
		rebuilds:     reg.Counter("snip_cloud_rebuilds_total", "PFI rebuilds completed"),
		rebuildFails: reg.Counter("snip_cloud_rebuild_failures_total", "PFI rebuilds that errored"),
		tablesServed: reg.Counter("snip_cloud_tables_served_total", "OTA table downloads served"),
		rejectedCorrupt: reg.Counter("snip_cloud_uploads_rejected_corrupt_total",
			"uploads rejected for failing the checksum or parse"),
		rejectedOversize: reg.Counter("snip_cloud_uploads_rejected_oversize_total",
			"uploads rejected for exceeding a body or decoded-size cap"),
		rejectedTrailerless: reg.Counter("snip_cloud_uploads_rejected_trailerless_total",
			"batch uploads rejected for the retired pre-trailer wire framing (prior-release writers)"),
		telemetryBatches: reg.Counter("snip_cloud_telemetry_batches_total",
			"device telemetry batches ingested"),
		telemetryRecords: reg.Counter("snip_cloud_telemetry_records_total",
			"device telemetry records folded into the fleet rollups"),
		telemetryDropped: reg.Counter("snip_cloud_telemetry_dropped_total",
			"telemetry records dropped by the aggregator's game cap"),
		requests:  make(map[string]*obs.Counter, len(endpointNames)),
		errors:    make(map[string]*obs.Counter, len(endpointNames)),
		latencyNS: make(map[string]*obs.Histogram, len(endpointNames)),
		spanNames: make(map[string]string, len(endpointNames)),
	}
	for _, ep := range endpointNames {
		m.requests[ep] = reg.Counter(
			`snip_cloud_requests_total{endpoint="`+ep+`"}`, "HTTP requests received")
		m.errors[ep] = reg.Counter(
			`snip_cloud_request_errors_total{endpoint="`+ep+`"}`, "HTTP requests answered with status >= 400")
		m.latencyNS[ep] = reg.Histogram(
			`snip_cloud_request_ns{endpoint="`+ep+`"}`, "request handling wall time in nanoseconds", obs.NanoBuckets())
		m.spanNames[ep] = "cloud." + ep
	}
	return m
}

// NewService builds an empty single-shard service; profilers are
// created per game on first upload. Every service owns a metrics
// registry (see Metrics) exposed at GET /v1/metrics.
func NewService(cfg pfi.Config) *Service {
	return NewShardedService(cfg, 1)
}

// NewShardedService builds a service whose games are partitioned across
// shards in-process profiler replicas behind the rendezvous router (see
// ShardFor). Each shard owns its games' profilers and drains its own
// bounded ingest queue on a dedicated worker; the replay worker budget
// (GOMAXPROCS) is divided across shards. Shard count is fixed for the
// service's lifetime. Call Close when done to stop the shard workers.
func NewShardedService(cfg pfi.Config, shards int) *Service {
	return NewServiceWithOptions(cfg, ServiceOptions{Shards: shards})
}

// ServiceOptions configures the serving stack beyond the PFI config:
// the shard fan-out, each shard's ingest queue bound, and the per-game
// bulk admission quota. Zero values take the defaults (1 shard,
// DefaultShardQueueCap, unlimited quota).
type ServiceOptions struct {
	// Shards is the profiler replica count behind the rendezvous router.
	Shards int
	// QueueCap bounds each shard's ingest queue; a full queue sheds
	// with 429 + Retry-After.
	QueueCap int
	// Quota gates bulk ingest per game with a token bucket (see
	// QuotaConfig). The zero value admits everything.
	Quota QuotaConfig
}

// NewServiceWithOptions builds the sharded service with explicit
// overload-survival knobs. Call Close when done to stop the workers.
func NewServiceWithOptions(cfg pfi.Config, opt ServiceOptions) *Service {
	shards := opt.Shards
	if shards < 1 {
		shards = 1
	}
	queueCap := opt.QueueCap
	if queueCap < 1 {
		queueCap = DefaultShardQueueCap
	}
	reg := obs.NewRegistry()
	cfg.Obs = reg // rebuild-time PFI searches surface in /v1/metrics
	s := &Service{
		cfg:          cfg,
		guards:       make(map[string]GuardStatus),
		reg:          reg,
		met:          newServiceMetrics(reg),
		tel:          newTelemetryAggregator(),
		adm:          newAdmission(queueCap, opt.Quota, reg),
		spans:        obs.NewSpanBuffer(obs.DefaultTracerCapacity),
		started:      time.Now(),
		deltaCap:     DefaultMaxDeltaChain,
		shardWorkers: max(1, runtime.GOMAXPROCS(0)/shards),
	}
	reg.Gauge("snip_cloud_shards", "shard replicas behind the router").Set(int64(shards))
	for i := 0; i < shards; i++ {
		sh := newShard(i, queueCap, reg)
		s.shards = append(s.shards, sh)
		s.wg.Add(1)
		go sh.run(&s.wg)
	}
	s.setBuildInfo()
	return s
}

// Close stops the shard workers and waits for in-flight ingest jobs to
// drain. Call only after the HTTP server has stopped accepting
// requests; handlers that enqueue after Close would panic.
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		for _, sh := range s.shards {
			close(sh.queue)
		}
		s.wg.Wait()
	})
}

// Shards returns the shard count behind the router.
func (s *Service) Shards() int { return len(s.shards) }

// SetDeltaCap bounds every game's retained delta chain — the longest
// chain /v1/update ships before falling back to the full image. Values
// < 1 restore DefaultMaxDeltaChain. Applies to existing and future
// profilers.
func (s *Service) SetDeltaCap(n int) {
	if n < 1 {
		n = DefaultMaxDeltaChain
	}
	s.mu.Lock()
	s.deltaCap = n
	s.mu.Unlock()
	for _, sh := range s.shards {
		sh.mu.Lock()
		ps := make([]*Profiler, 0, len(sh.profilers))
		for _, p := range sh.profilers {
			ps = append(ps, p)
		}
		sh.mu.Unlock()
		for _, p := range ps {
			p.SetDeltaCap(n)
		}
	}
}

// shardFor returns the shard owning a game.
func (s *Service) shardFor(game string) *shard {
	return s.shards[ShardFor(game, len(s.shards))]
}

// setBuildInfo refreshes the snip_build_info gauge: a constant-1 series
// whose labels carry the build facts scrapers key dashboards on (flat
// image layout version and the active table backend). The inactive
// backend's series reads 0, so a backend flip is visible as a series
// crossover rather than a label mutation.
func (s *Service) setBuildInfo() {
	help := "build/runtime facts as labels; the active configuration reads 1"
	flat, gob := int64(1), int64(0)
	if s.legacy {
		flat, gob = 0, 1
	}
	layout := strconv.Itoa(memo.FlatLayoutVersion)
	s.reg.Gauge(`snip_build_info{layout_version="`+layout+`",tables="flat"}`, help).Set(flat)
	s.reg.Gauge(`snip_build_info{layout_version="`+layout+`",tables="gob"}`, help).Set(gob)
}

// Metrics returns the service's registry, for embedding its series into
// a larger exposition or snapshotting in tests.
func (s *Service) Metrics() *obs.Registry { return s.reg }

// Spans returns the service's ingest-span ring — the cloud half of the
// distributed traces served at /v1/tracez.
func (s *Service) Spans() *obs.SpanBuffer { return s.spans }

// SetLogger attaches a structured logger for request and rebuild
// events. Nil (the default) disables logging.
func (s *Service) SetLogger(l *slog.Logger) { s.log = l }

// SetLegacyTables switches every profiler (existing and future) to the
// map-backed table path: rebuilds produce SnipTables and /v1/table
// serves the gob wire form. The default (false) builds flat tables and
// serves their images raw — the zero-copy OTA path.
func (s *Service) SetLegacyTables(v bool) {
	s.mu.Lock()
	s.legacy = v
	s.setBuildInfo()
	s.mu.Unlock()
	for _, sh := range s.shards {
		sh.mu.Lock()
		ps := make([]*Profiler, 0, len(sh.profilers))
		for _, p := range sh.profilers {
			ps = append(ps, p)
		}
		sh.mu.Unlock()
		for _, p := range ps {
			p.SetLegacyTables(v)
		}
	}
}

func (s *Service) profiler(game string) *Profiler {
	s.mu.Lock()
	legacy, deltaCap := s.legacy, s.deltaCap
	s.mu.Unlock()
	return s.shardFor(game).profiler(game, s.cfg, legacy, deltaCap)
}

// gameCount sums the games owned across shards.
func (s *Service) gameCount() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.profilers)
		sh.mu.Unlock()
	}
	return n
}

// statusWriter captures the response code for the middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request counting, latency measurement,
// structured logging and distributed-trace continuation for one
// endpoint: a request carrying X-Snip-Trace gets a cloud-side span
// recorded under the device-side parent, and its trace ID becomes the
// latency histogram's bucket exemplar.
func (s *Service) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		elapsed := time.Since(start)
		s.met.requests[endpoint].Inc()
		if sw.code >= 400 {
			s.met.errors[endpoint].Inc()
		}
		// The overload ledger counts every tracked ingest request by its
		// final status — one increment of offered plus exactly one
		// outcome — so offered = accepted + shed + dropped holds by
		// construction whether the shed came from admission, the queue
		// backstop, or a handler error.
		if pri, tracked := endpointClass[endpoint]; tracked {
			s.adm.account(pri, sw.code)
		}
		if sc, ok := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader)); ok {
			s.met.latencyNS[endpoint].ObserveExemplar(elapsed.Nanoseconds(), sc.Trace)
			name := s.met.spanNames[endpoint]
			sp := obs.StartSpan(sc.Child(obs.HashName(name)), sc.Span, name, 0)
			sp.Service = "cloud"
			sp.Err = sw.code >= 400
			s.spans.FinishWall(&sp, elapsed.Nanoseconds())
		} else {
			s.met.latencyNS[endpoint].Observe(elapsed.Nanoseconds())
		}
		if s.log != nil {
			s.log.Info("request",
				"endpoint", endpoint, "method", r.Method,
				"game", r.URL.Query().Get("game"),
				"status", sw.code, "elapsed", elapsed)
		}
	}
}

// Handler returns the HTTP handler.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/upload", s.instrument("upload", s.handleUpload))
	mux.HandleFunc("POST /v1/upload-batch", s.instrument("upload-batch", s.handleUploadBatch))
	mux.HandleFunc("POST /v1/rebuild", s.instrument("rebuild", s.handleRebuild))
	mux.HandleFunc("GET /v1/table", s.instrument("table", s.handleTable))
	mux.HandleFunc("GET /v1/update", s.instrument("update", s.handleUpdate))
	mux.HandleFunc("GET /v1/shardz", s.instrument("shardz", s.handleShardz))
	mux.HandleFunc("GET /v1/status", s.instrument("status", s.handleStatus))
	mux.HandleFunc("GET /v1/metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("GET /v1/healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /v1/tracez", s.instrument("tracez", s.handleTracez))
	mux.HandleFunc("POST /v1/guard", s.instrument("guard", s.handleGuard))
	mux.HandleFunc("POST /v1/telemetry", s.instrument("telemetry", s.handleTelemetry))
	mux.HandleFunc("GET /v1/fleetz", s.instrument("fleetz", s.handleFleetz))
	mux.HandleFunc("GET /v1/energyz", s.instrument("energyz", s.handleEnergyz))
	mux.HandleFunc("GET /v1/overloadz", s.instrument("overloadz", s.handleOverloadz))
	// net/http/pprof, wired explicitly (the service never touches the
	// DefaultServeMux): CPU/heap/goroutine/block profiles for debugging
	// a live profiler under fleet load.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// healthCheck is one /v1/healthz verdict line.
type healthCheck struct {
	Name      string  `json:"name"`
	OK        bool    `json:"ok"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Detail    string  `json:"detail,omitempty"`
}

// healthzReply is the /v1/healthz JSON schema.
type healthzReply struct {
	Status        string        `json:"status"` // "ok" | "degraded"
	UptimeSeconds float64       `json:"uptime_seconds"`
	Games         int           `json:"games"`
	SpansRetained int           `json:"spans_retained"`
	Checks        []healthCheck `json:"checks"`
}

// Healthz evaluates the service's SLO checks: the data-path endpoints'
// error ratio must stay under 10% (once enough requests exist to
// judge), and rebuilds must not be failing more often than succeeding.
func (s *Service) Healthz() healthzReply {
	games := s.gameCount()
	reply := healthzReply{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
		Games:         games,
		SpansRetained: s.spans.Len(),
	}
	const (
		errorRatioMax  = 0.10
		minJudgeable   = 20 // requests before an error ratio means anything
		rebuildFailMax = 0.50
	)
	for _, ep := range ingestEndpoints {
		reqs := s.met.requests[ep].Value()
		errs := s.met.errors[ep].Value()
		ratio := 0.0
		if reqs > 0 {
			ratio = float64(errs) / float64(reqs)
		}
		ok := reqs < minJudgeable || ratio <= errorRatioMax
		reply.Checks = append(reply.Checks, healthCheck{
			Name: "error_ratio_" + ep, OK: ok, Value: ratio, Threshold: errorRatioMax,
			Detail: fmt.Sprintf("%d/%d requests errored", errs, reqs),
		})
		if !ok {
			reply.Status = "degraded"
		}
	}
	rebuilds := s.met.rebuilds.Value()
	fails := s.met.rebuildFails.Value()
	failRatio := 0.0
	if rebuilds+fails > 0 {
		failRatio = float64(fails) / float64(rebuilds+fails)
	}
	rebuildOK := failRatio <= rebuildFailMax
	reply.Checks = append(reply.Checks, healthCheck{
		Name: "rebuild_failures", OK: rebuildOK, Value: failRatio, Threshold: rebuildFailMax,
		Detail: fmt.Sprintf("%d failed of %d attempts", fails, rebuilds+fails),
	})
	if !rebuildOK {
		reply.Status = "degraded"
	}
	// Fleet guard reports: an open breaker anywhere means some fleet is
	// serving without short-circuiting — degraded until it reports
	// recovery (rollback done, breaker closed).
	s.mu.Lock()
	guardGames := make([]string, 0, len(s.guards))
	for game := range s.guards {
		guardGames = append(guardGames, game)
	}
	sort.Strings(guardGames)
	guards := make(map[string]GuardStatus, len(guardGames))
	for _, game := range guardGames {
		guards[game] = s.guards[game]
	}
	s.mu.Unlock()
	for _, game := range guardGames {
		st := guards[game]
		ok := !st.BreakerOpen
		reply.Checks = append(reply.Checks, healthCheck{
			Name: "guard_breaker_" + game, OK: ok, Value: st.MispredictRatio(), Threshold: 0,
			Detail: fmt.Sprintf("%d mispredicts in %d checks, %d trips, %d rollbacks, generation %d",
				st.Mispredicts, st.ShadowChecks, st.Trips, st.Rollbacks, st.Generation),
		})
		if !ok {
			reply.Status = "degraded"
		}
	}
	// Fleet energy: a live generation spending measurably more net
	// energy per event than its predecessor is a regression the rebuild
	// policy must see, even when its raw hit rate looks fine.
	s.energyHealthChecks(&reply)
	return reply
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	reply := s.Healthz()
	w.Header().Set("Content-Type", "application/json")
	if reply.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(reply)
}

// handleTracez dumps recently recorded ingest spans, oldest first.
// ?trace=<16 hex chars> filters to one trace; ?limit=N caps the dump
// (default 256, newest retained).
func (s *Service) handleTracez(w http.ResponseWriter, r *http.Request) {
	spans := s.spans.Spans()
	if tq := r.URL.Query().Get("trace"); tq != "" {
		id, err := obs.ParseID(tq)
		if err != nil {
			http.Error(w, "bad trace: "+err.Error(), http.StatusBadRequest)
			return
		}
		spans = s.spans.ForTrace(id)
	}
	limit := 256
	if lq := r.URL.Query().Get("limit"); lq != "" {
		n, err := strconv.Atoi(lq)
		if err != nil || n < 1 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	if len(spans) > limit {
		spans = spans[len(spans)-limit:]
	}
	if spans == nil {
		spans = []obs.Span{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Total    int64      `json:"total_recorded"`
		Retained int        `json:"retained"`
		Spans    []obs.Span `json:"spans"`
	}{Total: s.spans.Total(), Retained: s.spans.Len(), Spans: spans})
}

// gameParam extracts and validates the required ?game= query parameter.
// On a missing value it writes a 400 and returns ok=false; every
// endpoint that keys on a game shares this check.
func gameParam(w http.ResponseWriter, r *http.Request) (string, bool) {
	game := r.URL.Query().Get("game")
	if game == "" {
		http.Error(w, "missing game", http.StatusBadRequest)
		return "", false
	}
	return game, true
}

func (s *Service) handleUpload(w http.ResponseWriter, r *http.Request) {
	game, ok := gameParam(w, r)
	if !ok {
		return
	}
	if !s.admit(w, PriorityBulk, game) {
		return
	}
	seed, err := strconv.ParseUint(r.URL.Query().Get("seed"), 10, 64)
	if err != nil {
		http.Error(w, "bad seed: "+err.Error(), http.StatusBadRequest)
		return
	}
	log, err := trace.DecodeEventsOnly(http.MaxBytesReader(w, r.Body, MaxUploadBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.met.rejectedOversize.Inc()
			http.Error(w, "log too large", http.StatusRequestEntityTooLarge)
			return
		}
		s.met.rejectedCorrupt.Inc()
		http.Error(w, "bad log: "+err.Error(), http.StatusBadRequest)
		return
	}
	p := s.profiler(game)
	sh := s.shardFor(game)
	var before, after int
	err, shed := sh.enqueue(func() error {
		before = p.ProfileLen()
		if err := p.IngestLog(seed, log); err != nil {
			return err
		}
		after = p.ProfileLen()
		return nil
	})
	if shed {
		writeShed(w, "shard ingest queue full", time.Second)
		return
	}
	if err != nil {
		http.Error(w, "replay: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.met.uploads.Inc()
	s.met.records.Add(int64(after - before))
	sh.met.sessions.Inc()
	sh.met.records.Add(int64(after - before))
	fmt.Fprintf(w, "ok records=%d\n", after)
}

// handleUploadBatch ingests a gzip'd multi-session batch: the fleet's
// bulk path. Sessions replay in parallel on the profiler's emulator
// fan-out and merge in upload order, so the resulting profile is
// byte-identical to uploading the sessions one at a time.
func (s *Service) handleUploadBatch(w http.ResponseWriter, r *http.Request) {
	game, ok := gameParam(w, r)
	if !ok {
		return
	}
	if !s.admit(w, PriorityBulk, game) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBatchBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.met.rejectedOversize.Inc()
			http.Error(w, "batch too large", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	batch, err := trace.DecodeBatchLimit(bytes.NewReader(body), MaxBatchDecodedBytes)
	if err != nil {
		if errors.Is(err, trace.ErrBatchTooLarge) {
			// A valid gzip stream whose decompressed size blew the cap:
			// the gzip-bomb signature.
			s.met.rejectedOversize.Inc()
			http.Error(w, "batch decoded size exceeds limit", http.StatusRequestEntityTooLarge)
			return
		}
		if errors.Is(err, trace.ErrBatchTrailerless) {
			// Not corruption: a prior-release writer that predates the
			// mandatory trailer is still uploading. Counted separately so
			// an incomplete fleet upgrade is visible during rollout.
			s.met.rejectedTrailerless.Inc()
			http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
			return
		}
		// Checksum mismatches and parse failures are one deterministic
		// family: the body that arrived is not the body that was sent.
		s.met.rejectedCorrupt.Inc()
		http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	if batch.Game != "" && batch.Game != game {
		http.Error(w, fmt.Sprintf("batch game %q != %q", batch.Game, game), http.StatusBadRequest)
		return
	}
	if len(batch.Sessions) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	logs := make([]SessionLog, len(batch.Sessions))
	for i, se := range batch.Sessions {
		logs[i] = SessionLog{Seed: se.Seed, Log: se.Log}
	}
	p := s.profiler(game)
	sh := s.shardFor(game)
	var before, after int
	err, shed := sh.enqueue(func() error {
		before = p.ProfileLen()
		if err := p.IngestLogs(s.shardWorkers, logs); err != nil {
			return err
		}
		after = p.ProfileLen()
		return nil
	})
	if shed {
		writeShed(w, "shard ingest queue full", time.Second)
		return
	}
	if err != nil {
		http.Error(w, "replay: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.met.uploads.Add(int64(len(logs)))
	s.met.batches.Inc()
	s.met.batchBytes.Add(int64(len(body)))
	s.met.records.Add(int64(after - before))
	sh.met.batches.Inc()
	sh.met.sessions.Add(int64(len(logs)))
	sh.met.records.Add(int64(after - before))
	fmt.Fprintf(w, "ok sessions=%d records=%d\n", len(logs), after)
}

func (s *Service) handleRebuild(w http.ResponseWriter, r *http.Request) {
	game, ok := gameParam(w, r)
	if !ok {
		return
	}
	if !s.admit(w, PriorityBulk, game) {
		return
	}
	p := s.profiler(game)
	sh := s.shardFor(game)
	var up *TableUpdate
	err, shed := sh.enqueue(func() error {
		var err error
		up, err = p.Rebuild()
		return err
	})
	if shed {
		writeShed(w, "shard ingest queue full", time.Second)
		return
	}
	if err != nil {
		s.met.rebuildFails.Inc()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.met.rebuilds.Inc()
	sh.met.rebuilds.Inc()
	s.reg.Gauge(`snip_cloud_table_version{game="`+game+`"}`,
		"latest table version built per game").Set(int64(up.Version))
	if s.log != nil {
		s.log.Info("rebuild", "game", game, "version", up.Version,
			"rows", up.Table.Rows(), "coverage", up.Metrics.Coverage)
	}
	fmt.Fprintf(w, "ok version=%d rows=%d size=%v\n", up.Version, up.Table.Rows(), up.Table.Size())
}

func (s *Service) handleTable(w http.ResponseWriter, r *http.Request) {
	game, ok := gameParam(w, r)
	if !ok {
		return
	}
	up := s.profiler(game).Latest()
	if up == nil {
		http.Error(w, "no table built yet", http.StatusNotFound)
		return
	}
	s.serveFullTable(w, up, s.shardFor(game))
}

// serveFullTable writes a full OTA payload — shared by /v1/table and the
// /v1/update full-image fallback, so both paths serve identical bytes
// and headers and both land in the owning shard's full-serve accounting.
func (s *Service) serveFullTable(w http.ResponseWriter, up *TableUpdate, sh *shard) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Snip-Version", strconv.Itoa(up.Version))
	// A flat table ships as its raw image: the bytes on the wire ARE the
	// serving structure, so the device validates the header + CRC and
	// probes straight out of the buffer — no gob decode anywhere on the
	// device path. The build metadata gob used to carry rides response
	// headers instead.
	if flat, ok := up.Table.(*memo.FlatTable); ok {
		pm, err := json.Marshal(up.Metrics)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("X-Snip-Format", "flat")
		w.Header().Set("X-Snip-Game", up.Game)
		w.Header().Set("X-Snip-Records", strconv.Itoa(up.ProfileRecords))
		w.Header().Set("X-Snip-Pfi", string(pm))
		_, _ = w.Write(flat.Image())
		s.met.tablesServed.Inc()
		sh.met.otaFull.Inc()
		sh.met.fullBytes.Add(int64(len(flat.Image())))
		return
	}
	var buf bytes.Buffer
	if err := EncodeUpdate(&buf, up); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("X-Snip-Format", "gob")
	_, _ = w.Write(buf.Bytes())
	s.met.tablesServed.Inc()
	sh.met.otaFull.Inc()
	sh.met.fullBytes.Add(int64(buf.Len()))
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	game, ok := gameParam(w, r)
	if !ok {
		return
	}
	p := s.profiler(game)
	fmt.Fprintf(w, "game=%s records=%d", game, p.ProfileLen())
	if up := p.Latest(); up != nil {
		fmt.Fprintf(w, " version=%d rows=%d size=%v coverage=%.1f%%",
			up.Version, up.Table.Rows(), up.Table.Size(), 100*up.Metrics.Coverage)
	}
	fmt.Fprintln(w)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// wireUpdate mirrors TableUpdate with the table in wire form.
type wireUpdate struct {
	Game           string
	Version        int
	Table          *memo.Wire
	Metrics        pfi.Metrics
	ProfileRecords int
}

// EncodeUpdate writes a TableUpdate as a gob stream.
func EncodeUpdate(w io.Writer, up *TableUpdate) error {
	return gob.NewEncoder(w).Encode(wireUpdate{
		Game: up.Game, Version: up.Version, Table: up.Table.Export(),
		Metrics: up.Metrics, ProfileRecords: up.ProfileRecords,
	})
}

// DecodeUpdate reads a TableUpdate written by EncodeUpdate.
func DecodeUpdate(r io.Reader) (*TableUpdate, error) {
	var wu wireUpdate
	if err := gob.NewDecoder(r).Decode(&wu); err != nil {
		return nil, fmt.Errorf("cloud: decode update: %w", err)
	}
	if wu.Table == nil {
		return nil, fmt.Errorf("cloud: decode update: missing table")
	}
	t := memo.FromWire(wu.Table)
	return &TableUpdate{
		Game: wu.Game, Version: wu.Version, Selection: t.Selection(), Table: t,
		Metrics: wu.Metrics, ProfileRecords: wu.ProfileRecords,
	}, nil
}

// DefaultClientTimeout is the default per-attempt bound installed by
// DefaultRetryPolicy; table rebuilds dominate, and even large profiles
// finish well inside it.
const DefaultClientTimeout = 30 * time.Second

// RetryPolicy bounds the client's retry loop for transient failures
// (network errors and 5xx responses). Backoff is exponential with full
// jitter: attempt n sleeps uniform(0, min(MaxDelay, BaseDelay·2ⁿ⁻¹)].
// 4xx responses never retry — they are the caller's bug, and retrying
// them would just triple the error latency — with one exception: 429
// is the cloud shedding load, not a caller bug, and Retry429 opts into
// treating it as retryable under the server's Retry-After guidance.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first.
	// <= 1 disables retries.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep.
	MaxDelay time.Duration
	// Timeout bounds each individual attempt end to end — connect
	// through the last body byte, enforced with a per-request context
	// deadline (cancelled when the response body is closed). 0 disables
	// the bound. It lives on the policy because timeout and retry
	// interact: the worst-case call latency is
	// MaxAttempts·Timeout + backoff sleeps.
	Timeout time.Duration
	// Retry429 makes HTTP 429 a first-class retryable outcome: the
	// client waits out the response's Retry-After (plus jitter, so a
	// shed fleet desynchronizes) before trying again, and a per-call
	// RetryBudget (see CallControl) bounds how long a device keeps
	// trying. False — the default — keeps the legacy contract: a 429 is
	// returned to the caller like any other 4xx.
	Retry429 bool
}

// DefaultRetryPolicy is what NewClient installs: up to 3 tries with
// 50 ms base backoff capped at 2 s — enough to ride out a profiler
// restart without turning a dead cloud into a half-minute stall — and a
// 30 s per-attempt timeout.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Timeout:     DefaultClientTimeout,
	}
}

// backoff returns the sleep before retry attempt n (n >= 1).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	return p.backoffWith(attempt, rand.Int64N)
}

// backoffWith is backoff with an injectable jitter source, so a
// per-device pre-split RNG makes the fleet's backoff deterministic.
func (p RetryPolicy) backoffWith(attempt int, jitter func(int64) int64) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if p.MaxDelay > 0 && (d > p.MaxDelay || d <= 0) {
		d = p.MaxDelay
	}
	if d <= 0 {
		return 0
	}
	return time.Duration(jitter(int64(d))) + 1
}

// Client is the device-side counterpart: upload logs (singly or in
// gzip'd batches), request rebuilds, fetch tables. The underlying
// transport keeps connections alive and pools them per host, so a fleet
// of devices sharing one Client multiplexes over a handful of sockets
// instead of handshaking per request. Safe for concurrent use.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// Retry bounds the transient-failure retry loop and the per-attempt
	// timeout (see RetryPolicy).
	Retry RetryPolicy

	// retries counts retry attempts when metrics are attached; shed
	// counts 429 responses — kept apart from transport failures so shed
	// load is never misread as corruption or a flaky network.
	retries *obs.Counter
	shed    *obs.Counter
	// log, when attached, records every retry attempt and final
	// give-up with the upload's trace ID.
	log *slog.Logger
}

// NewClient builds a client for the given base URL (e.g.
// "http://127.0.0.1:8370"). Requests are bounded by the retry policy's
// per-attempt Timeout (DefaultClientTimeout out of the box — set
// c.Retry.Timeout to tune it); the pooled keep-alive transport is sized
// for fleet fan-in. Replace c.HTTP to tune the transport.
func NewClient(baseURL string) *Client {
	tr := &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
	}
	return &Client{
		BaseURL: baseURL,
		HTTP:    &http.Client{Transport: tr},
		Retry:   DefaultRetryPolicy(),
	}
}

// SetMetrics attaches an observability registry; the client then counts
// retry attempts in snip_cloud_client_retries_total and 429 sheds in
// snip_cloud_client_shed_total. Nil detaches.
func (c *Client) SetMetrics(reg *obs.Registry) {
	c.retries = reg.Counter("snip_cloud_client_retries_total",
		"client requests retried after a transient failure")
	c.shed = reg.Counter("snip_cloud_client_shed_total",
		"client requests answered 429: load the cloud deliberately shed")
}

// SetLogger attaches a structured logger; the client then logs every
// retry attempt (level WARN, with the upload's trace ID) and final
// give-up (level ERROR) instead of retrying silently. Nil disables.
func (c *Client) SetLogger(l *slog.Logger) { c.log = l }

// endpoint assembles BaseURL + path + escaped query parameters.
func (c *Client) endpoint(path string, q url.Values) string {
	u := c.BaseURL + path
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	return u
}

// cancelBody releases the attempt's context deadline when the caller
// finishes reading the response (Close), so the timeout covers the
// whole exchange without leaking a timer per request.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// do issues one request with bounded retry on transient failures and
// returns the response plus how many retries the call needed. body may
// be nil; it is re-read from the byte slice on every attempt, which is
// why the request body is materialized rather than streamed. A valid sc
// is propagated in the X-Snip-Trace header, linking the server-side
// ingest span into the caller's trace, and stamps the retry log lines.
func (c *Client) do(method, u, contentType string, body []byte, sc obs.SpanContext) (*http.Response, int, error) {
	resp, retries, _, err := c.doCtl(method, u, contentType, body, sc, nil)
	return resp, retries, err
}

// doCtl is do with per-call backpressure control and shed accounting:
// it additionally reports how many attempts were answered 429. With
// Retry429 set on the policy, a 429 waits out the server's Retry-After
// plus jitter (a missing header falls back to the policy backoff)
// before retrying, gated by ctl's RetryBudget; exhausting the budget or
// the attempts on sheds fails the call with an ErrShed-wrapped error.
func (c *Client) doCtl(method, u, contentType string, body []byte, sc obs.SpanContext, ctl *CallControl) (*http.Response, int, int, error) {
	pol := c.Retry
	if pol.MaxAttempts <= 0 {
		pol.MaxAttempts = 1
	}
	jitter := rand.Int64N
	if ctl != nil && ctl.Jitter != nil {
		jitter = ctl.Jitter
	}
	var lastErr error
	var sleepFor time.Duration
	retries, shed := 0, 0
	lastShed := false
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			retries++
			c.retries.Inc()
			if c.log != nil {
				c.log.Warn("cloud client retry",
					"attempt", attempt+1, "max_attempts", pol.MaxAttempts,
					"url", u, "trace_id", sc.Trace.String(), "err", lastErr)
			}
			ctl.sleep(sleepFor)
		}
		ctx, cancel := context.Background(), context.CancelFunc(func() {})
		if pol.Timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, pol.Timeout)
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, u, rd)
		if err != nil {
			cancel()
			return nil, retries, shed, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if sc.Valid() {
			req.Header.Set(obs.TraceHeader, sc.HeaderValue())
		}
		resp, err := c.HTTP.Do(req)
		if err != nil {
			cancel()
			lastErr = err // transport error (incl. timeout): transient, retry
			lastShed = false
			sleepFor = pol.backoffWith(attempt+1, jitter)
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			shed++
			c.shed.Inc()
			if !pol.Retry429 {
				// Legacy contract: the 429 is the caller's to handle,
				// counted but not retried.
				resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
				return resp, retries, shed, nil
			}
			ra, hasRA := retryAfterDelay(resp)
			lastErr = errFromResponse(resp)
			resp.Body.Close()
			cancel()
			lastShed = true
			if ctl != nil && ctl.Budget != nil && !ctl.Budget.Allow() {
				err := fmt.Errorf("cloud: retry budget exhausted after %d sheds: %v: %w", shed, lastErr, ErrShed)
				if c.log != nil {
					c.log.Error("cloud client dropping shed upload",
						"sheds", shed, "url", u,
						"trace_id", sc.Trace.String(), "err", lastErr)
				}
				return nil, retries, shed, err
			}
			if hasRA {
				// Honor the server's horizon, jittered upward by as much
				// as half again so a fleet shed together retries spread.
				sleepFor = ra + time.Duration(jitter(int64(ra)/2+1))
			} else {
				sleepFor = pol.backoffWith(attempt+1, jitter)
			}
			continue
		}
		if resp.StatusCode >= 500 {
			lastErr = errFromResponse(resp)
			resp.Body.Close()
			cancel()
			lastShed = false
			sleepFor = pol.backoffWith(attempt+1, jitter)
			continue
		}
		resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
		return resp, retries, shed, nil
	}
	err := fmt.Errorf("cloud: giving up after %d attempts: %w", pol.MaxAttempts, lastErr)
	if lastShed {
		err = fmt.Errorf("cloud: giving up after %d attempts: %v: %w", pol.MaxAttempts, lastErr, ErrShed)
	}
	if c.log != nil {
		c.log.Error("cloud client giving up",
			"attempts", pol.MaxAttempts, "url", u,
			"trace_id", sc.Trace.String(), "err", lastErr)
	}
	return nil, retries, shed, err
}

// Upload sends an events-only log for a session seed.
func (c *Client) Upload(game string, seed uint64, log *trace.EventLog) error {
	return c.UploadTraced(game, seed, log, obs.SpanContext{})
}

// UploadTraced is Upload with distributed-trace propagation: the span
// context (typically the session's root, see obs.Root) rides the
// X-Snip-Trace header so the cloud's ingest span joins the session's
// trace.
func (c *Client) UploadTraced(game string, seed uint64, log *trace.EventLog, sc obs.SpanContext) error {
	var buf bytes.Buffer
	if err := trace.EncodeEventsOnly(&buf, log); err != nil {
		return err
	}
	u := c.endpoint("/v1/upload", url.Values{
		"game": {game}, "seed": {strconv.FormatUint(seed, 10)},
	})
	resp, _, err := c.do(http.MethodPost, u, "application/octet-stream", buf.Bytes(), sc)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return errFromResponse(resp)
}

// BatchResult describes one batched upload's transport outcome.
type BatchResult struct {
	// Wire is the compressed bytes put on the wire.
	Wire units.Size
	// Retries is how many transient-failure retries the upload needed
	// (reported even when the call ultimately failed).
	Retries int
	// Shed is how many attempts the cloud answered 429 — deliberate
	// load shedding, reported apart from Retries so overload is never
	// misread as corruption or network failure.
	Shed int
}

// UploadBatch sends many sessions in one gzip'd request — the fleet's
// bulk ingest path. Returns the compressed bytes put on the wire.
func (c *Client) UploadBatch(game string, sessions []trace.SessionEvents) (units.Size, error) {
	br, err := c.UploadBatchTraced(game, sessions, obs.SpanContext{})
	return br.Wire, err
}

// UploadBatchTraced is UploadBatch with distributed-trace propagation
// and per-call retry accounting (the fleet's per-device health tallies
// feed on the latter).
func (c *Client) UploadBatchTraced(game string, sessions []trace.SessionEvents, sc obs.SpanContext) (BatchResult, error) {
	return c.UploadBatchControlled(game, sessions, sc, nil)
}

// UploadBatchControlled is UploadBatchTraced with per-call backpressure
// control: ctl carries the device's retry budget, sim-time sleep and
// deterministic jitter through the retry loop (see CallControl; nil is
// fine). A successful upload credits the budget; a terminal shed fails
// with an ErrShed-wrapped error the fleet ledger counts apart from
// genuine failures.
func (c *Client) UploadBatchControlled(game string, sessions []trace.SessionEvents, sc obs.SpanContext, ctl *CallControl) (BatchResult, error) {
	var buf bytes.Buffer
	if err := trace.EncodeBatch(&buf, &trace.SessionBatch{Game: game, Sessions: sessions}); err != nil {
		return BatchResult{}, err
	}
	u := c.endpoint("/v1/upload-batch", url.Values{"game": {game}})
	resp, retries, shed, err := c.doCtl(http.MethodPost, u, "application/octet-stream", buf.Bytes(), sc, ctl)
	if err != nil {
		return BatchResult{Retries: retries, Shed: shed}, err
	}
	defer resp.Body.Close()
	if err := errFromResponse(resp); err != nil {
		return BatchResult{Retries: retries, Shed: shed}, err
	}
	if ctl != nil && ctl.Budget != nil {
		ctl.Budget.Credit()
	}
	return BatchResult{Wire: units.Size(buf.Len()), Retries: retries, Shed: shed}, nil
}

// Rebuild asks the cloud to retrain and build a fresh table.
func (c *Client) Rebuild(game string) error {
	u := c.endpoint("/v1/rebuild", url.Values{"game": {game}})
	resp, _, err := c.do(http.MethodPost, u, "text/plain", nil, obs.SpanContext{})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return errFromResponse(resp)
}

// FetchTable downloads the latest OTA table. A flat-image payload
// (sniffed by its magic) is validated and served out of the downloaded
// buffer directly — the device path runs no gob decode; a gob payload
// takes the legacy DecodeUpdate path.
func (c *Client) FetchTable(game string) (*TableUpdate, error) {
	u := c.endpoint("/v1/table", url.Values{"game": {game}})
	resp, _, err := c.do(http.MethodGet, u, "", nil, obs.SpanContext{})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if err := errFromResponse(resp); err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cloud: read table: %w", err)
	}
	if !memo.IsFlatImage(body) {
		return DecodeUpdate(bytes.NewReader(body))
	}
	t, err := memo.LoadFlatTable(body)
	if err != nil {
		return nil, fmt.Errorf("cloud: flat table payload: %w", err)
	}
	up := &TableUpdate{Game: resp.Header.Get("X-Snip-Game"), Selection: t.Selection(), Table: t}
	if up.Game == "" {
		up.Game = game
	}
	if v, err := strconv.Atoi(resp.Header.Get("X-Snip-Version")); err == nil {
		up.Version = v
	}
	if n, err := strconv.Atoi(resp.Header.Get("X-Snip-Records")); err == nil {
		up.ProfileRecords = n
	}
	if pm := resp.Header.Get("X-Snip-Pfi"); pm != "" {
		if err := json.Unmarshal([]byte(pm), &up.Metrics); err != nil {
			return nil, fmt.Errorf("cloud: bad X-Snip-Pfi header: %w", err)
		}
	}
	return up, nil
}

func errFromResponse(resp *http.Response) error {
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
	return fmt.Errorf("cloud: %s: %s", resp.Status, bytes.TrimSpace(body))
}
