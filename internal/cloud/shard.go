package cloud

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"

	"snip/internal/memo"
	"snip/internal/obs"
	"snip/internal/pfi"
	"snip/internal/trace"
	"snip/internal/units"
)

// The shard tier: N in-process profiler replicas behind a deterministic
// router. A game is wholly owned by one shard — its profile, PFI state
// and ingest queue live there and nowhere else — so rebuild output is a
// function of the uploads alone and stays byte-identical at every shard
// count (pinned by TestShardedRebuildDeterminism). What sharding buys
// is throughput: ingest replay and PFI rebuilds for different games run
// on different shard workers instead of contending on one service.
//
// Routing is rendezvous (highest-random-weight) hashing: each shard
// scores Combine(hash(game), shard salt) and the highest score owns the
// game. Unlike modulo placement, growing the shard count only moves the
// games whose new shard actually wins — there is no global reshuffle.

// DefaultShardQueueCap bounds each shard's ingest queue unless the
// service is built with an explicit cap (ServiceOptions.QueueCap,
// profilerd/fleetbench -shard-queue-cap). A full queue sheds load
// (HTTP 429 + Retry-After) instead of queueing unboundedly — the
// device backs off, the shard stays bounded.
const DefaultShardQueueCap = 64

// ShardFor returns the shard owning a game under rendezvous hashing
// over the given shard count. Deterministic in (game, shards); every
// router replica computes the same owner with no shared state.
func ShardFor(game string, shards int) int {
	if shards <= 1 {
		return 0
	}
	gh := trace.HashString(game)
	best, bestW := 0, uint64(0)
	for i := 0; i < shards; i++ {
		w := trace.Combine(gh, trace.HashString("snip-shard-"+strconv.Itoa(i)))
		if i == 0 || w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// ingestJob is one unit of shard work: the closure runs on the shard's
// worker, its error lands on done.
type ingestJob struct {
	run  func() error
	done chan error
}

// shardMetrics are the per-shard series (snip_cloud_shard_*), labeled
// by shard id at construction so every series exists from the first
// scrape.
type shardMetrics struct {
	batches    *obs.Counter
	sessions   *obs.Counter
	records    *obs.Counter
	rebuilds   *obs.Counter
	queueShed  *obs.Counter
	queueDepth *obs.Gauge
	otaDelta   *obs.Counter
	otaFull    *obs.Counter
	deltaBytes *obs.Counter
	fullBytes  *obs.Counter
}

// shard owns a partition of the games: their profilers plus a bounded
// ingest queue drained by one worker goroutine. Handlers enqueue and
// wait, so request semantics are unchanged — the queue is what
// serializes a shard's replay/PFI work onto its own worker instead of
// the shared handler pool.
type shard struct {
	id        int
	cap       int
	mu        sync.Mutex
	profilers map[string]*Profiler
	queue     chan ingestJob
	met       shardMetrics
}

func newShard(id, queueCap int, reg *obs.Registry) *shard {
	if queueCap < 1 {
		queueCap = DefaultShardQueueCap
	}
	l := `{shard="` + strconv.Itoa(id) + `"}`
	return &shard{
		id:        id,
		cap:       queueCap,
		profilers: make(map[string]*Profiler),
		queue:     make(chan ingestJob, queueCap),
		met: shardMetrics{
			batches:    reg.Counter(`snip_cloud_shard_batches_total`+l, "batch uploads ingested by this shard"),
			sessions:   reg.Counter(`snip_cloud_shard_sessions_total`+l, "sessions ingested by this shard"),
			records:    reg.Counter(`snip_cloud_shard_records_total`+l, "profile records reconstructed by this shard"),
			rebuilds:   reg.Counter(`snip_cloud_shard_rebuilds_total`+l, "PFI rebuilds completed by this shard"),
			queueShed:  reg.Counter(`snip_cloud_shard_queue_shed_total`+l, "ingest requests shed because the shard queue was full"),
			queueDepth: reg.Gauge(`snip_cloud_shard_queue_depth`+l, "ingest jobs waiting on the shard queue"),
			otaDelta:   reg.Counter(`snip_cloud_shard_ota_delta_total`+l, "OTA updates served as delta chains"),
			otaFull:    reg.Counter(`snip_cloud_shard_ota_full_total`+l, "OTA updates served as full tables"),
			deltaBytes: reg.Counter(`snip_cloud_shard_ota_delta_bytes_total`+l, "bytes served as delta chains"),
			fullBytes:  reg.Counter(`snip_cloud_shard_ota_full_bytes_total`+l, "bytes served as full tables"),
		},
	}
}

// run drains the shard queue until Close closes it.
func (sh *shard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for job := range sh.queue {
		job.done <- job.run()
		sh.met.queueDepth.Set(int64(len(sh.queue)))
	}
}

// enqueue hands work to the shard worker and waits for it. shed=true
// means the bounded queue was full and the job never ran — the caller
// answers 429.
func (sh *shard) enqueue(run func() error) (err error, shed bool) {
	job := ingestJob{run: run, done: make(chan error, 1)}
	select {
	case sh.queue <- job:
		sh.met.queueDepth.Set(int64(len(sh.queue)))
		return <-job.done, false
	default:
		sh.met.queueShed.Inc()
		return nil, true
	}
}

// profiler returns (creating if needed) the shard's profiler for game.
func (sh *shard) profiler(game string, cfg pfi.Config, legacy bool, deltaCap int) *Profiler {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, ok := sh.profilers[game]
	if !ok {
		p = NewProfiler(game, cfg)
		p.SetLegacyTables(legacy)
		p.SetDeltaCap(deltaCap)
		sh.profilers[game] = p
	}
	return p
}

// games returns the shard's game names, sorted.
func (sh *shard) games() []string {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	names := make([]string, 0, len(sh.profilers))
	for g := range sh.profilers {
		names = append(names, g)
	}
	sort.Strings(names)
	return names
}

// shardzShard is one shard's row in the /v1/shardz rollup.
type shardzShard struct {
	Shard          int      `json:"shard"`
	Games          []string `json:"games"`
	IngestBatches  int64    `json:"ingest_batches"`
	IngestSessions int64    `json:"ingest_sessions"`
	IngestRecords  int64    `json:"ingest_records"`
	Rebuilds       int64    `json:"rebuilds"`
	QueueDepth     int64    `json:"queue_depth"`
	QueueCap       int      `json:"queue_cap"`
	QueueShed      int64    `json:"queue_shed"`
	OTADeltaServed int64    `json:"ota_delta_served"`
	OTAFullServed  int64    `json:"ota_full_served"`
	OTADeltaBytes  int64    `json:"ota_delta_bytes"`
	OTAFullBytes   int64    `json:"ota_full_bytes"`
	MaxDeltaChain  int      `json:"max_delta_chain"`
}

// shardzReply is the GET /v1/shardz JSON schema.
type shardzReply struct {
	Shards   int           `json:"shards"`
	DeltaCap int           `json:"delta_chain_cap"`
	PerShard []shardzShard `json:"per_shard"`
}

// Shardz snapshots the per-shard rollup served at /v1/shardz — the feed
// for snipstat's shard pane.
func (s *Service) Shardz() shardzReply {
	reply := shardzReply{Shards: len(s.shards), DeltaCap: s.deltaCap}
	for _, sh := range s.shards {
		row := shardzShard{
			Shard:          sh.id,
			Games:          sh.games(),
			IngestBatches:  sh.met.batches.Value(),
			IngestSessions: sh.met.sessions.Value(),
			IngestRecords:  sh.met.records.Value(),
			Rebuilds:       sh.met.rebuilds.Value(),
			QueueDepth:     sh.met.queueDepth.Value(),
			QueueCap:       sh.cap,
			QueueShed:      sh.met.queueShed.Value(),
			OTADeltaServed: sh.met.otaDelta.Value(),
			OTAFullServed:  sh.met.otaFull.Value(),
			OTADeltaBytes:  sh.met.deltaBytes.Value(),
			OTAFullBytes:   sh.met.fullBytes.Value(),
		}
		sh.mu.Lock()
		for _, p := range sh.profilers {
			if n := p.DeltaChainLen(); n > row.MaxDeltaChain {
				row.MaxDeltaChain = n
			}
		}
		sh.mu.Unlock()
		reply.PerShard = append(reply.PerShard, row)
	}
	return reply
}

func (s *Service) handleShardz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Shardz())
}

// handleUpdate is the generation-negotiated OTA endpoint:
//
//	GET /v1/update?game=G&gen=N
//
// gen is the table version the device currently serves (0 or absent:
// none). Responses: 404 no table built; 304 the device is current; else
// a delta chain (X-Snip-Format: delta) when the retained chain covers
// gen and is smaller than the image, otherwise the full table exactly
// as /v1/table would serve it.
func (s *Service) handleUpdate(w http.ResponseWriter, r *http.Request) {
	game, ok := gameParam(w, r)
	if !ok {
		return
	}
	gen := 0
	if q := r.URL.Query().Get("gen"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			http.Error(w, "bad gen", http.StatusBadRequest)
			return
		}
		gen = n
	}
	p := s.profiler(game)
	up := p.Latest()
	if up == nil {
		http.Error(w, "no table built yet", http.StatusNotFound)
		return
	}
	if gen >= up.Version {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	sh := s.shardFor(game)
	if flat, isFlat := up.Table.(*memo.FlatTable); isFlat {
		if chain := p.DeltaChainFrom(gen); chain != nil {
			var buf bytes.Buffer
			if err := trace.EncodeDeltaChain(&buf, chain); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			// Serving a chain larger than the image it reconstructs would
			// be delta theater; prefer the full image.
			if buf.Len() < len(flat.Image()) {
				pm, err := json.Marshal(up.Metrics)
				if err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
				w.Header().Set("Content-Type", "application/octet-stream")
				w.Header().Set("X-Snip-Format", "delta")
				w.Header().Set("X-Snip-Game", up.Game)
				w.Header().Set("X-Snip-Version", strconv.Itoa(up.Version))
				w.Header().Set("X-Snip-Records", strconv.Itoa(up.ProfileRecords))
				w.Header().Set("X-Snip-Pfi", string(pm))
				_, _ = w.Write(buf.Bytes())
				sh.met.otaDelta.Inc()
				sh.met.deltaBytes.Add(int64(buf.Len()))
				return
			}
		}
	}
	s.serveFullTable(w, up, sh)
}

// UpdateResult describes how FetchUpdate brought the device current.
type UpdateResult struct {
	// Update is the freshly applicable table, nil when NotModified.
	Update *TableUpdate
	// Format is how the final table arrived: "delta", "flat" or "gob".
	// Empty when NotModified.
	Format string
	// NotModified reports the device was already current.
	NotModified bool
	// WireBytes counts every OTA byte the exchange moved, including a
	// delta chain that failed to apply before the full-image fallback.
	WireBytes units.Size
	// DeltaBytes and FullBytes split WireBytes by path.
	DeltaBytes units.Size
	FullBytes  units.Size
	// DeltaLinks is how many chain links were applied.
	DeltaLinks int
	// FullFallback reports that a delta response could not be applied
	// (base mismatch after a rollback, corrupt chain) and the full image
	// was fetched instead.
	FullFallback bool
}

// FetchUpdate negotiates an OTA update: it reports the generation the
// device serves (haveVersion, with have as the local flat table) and
// applies whatever comes back — a delta chain patched onto have with
// full LoadFlatTable validation (ApplyDeltaChain), a raw flat image, or
// a legacy gob update. A delta chain that fails to decode or apply is
// not an error: the client falls back to the full table and reports it
// in the result, so a device whose real generation drifted from what it
// reported (e.g. after a guard rollback) self-heals at the next fetch.
func (c *Client) FetchUpdate(game string, haveVersion int, have *memo.FlatTable) (*UpdateResult, error) {
	if have == nil {
		haveVersion = 0
	}
	u := c.endpoint("/v1/update", url.Values{
		"game": {game}, "gen": {strconv.Itoa(haveVersion)},
	})
	resp, _, err := c.do(http.MethodGet, u, "", nil, obs.SpanContext{})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		return &UpdateResult{NotModified: true}, nil
	}
	if err := errFromResponse(resp); err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cloud: read update: %w", err)
	}
	res := &UpdateResult{WireBytes: units.Size(len(body))}
	if resp.Header.Get("X-Snip-Format") == "delta" {
		res.DeltaBytes = units.Size(len(body))
		chain, derr := trace.DecodeDeltaChain(bytes.NewReader(body), trace.DefaultMaxDecodedDelta)
		var patched *memo.FlatTable
		if derr == nil {
			patched, derr = memo.ApplyDeltaChain(have, chain)
		}
		if derr == nil {
			up, herr := updateFromFlatHeaders(resp, game, patched)
			if herr != nil {
				return nil, herr
			}
			if want, err := strconv.Atoi(resp.Header.Get("X-Snip-Version")); err == nil && chain.Deltas[len(chain.Deltas)-1].ToVersion != want {
				derr = fmt.Errorf("cloud: delta chain ends at version %d, header says %d", chain.Deltas[len(chain.Deltas)-1].ToVersion, want)
			} else {
				res.Update = up
				res.Format = "delta"
				res.DeltaLinks = len(chain.Deltas)
				return res, nil
			}
		}
		// The chain is unusable on this base. Fetch the full table; the
		// wasted chain bytes stay counted.
		res.FullFallback = true
		up, err := c.FetchTable(game)
		if err != nil {
			return nil, fmt.Errorf("cloud: full-image fallback after delta failure (%v): %w", derr, err)
		}
		res.Update = up
		res.Format = "flat"
		if _, ok := up.Table.(*memo.FlatTable); !ok {
			res.Format = "gob"
		}
		full := tableWireSize(up)
		res.FullBytes = full
		res.WireBytes += full
		return res, nil
	}
	// Full payload straight off /v1/update: flat image or legacy gob.
	res.FullBytes = res.WireBytes
	if !memo.IsFlatImage(body) {
		up, err := DecodeUpdate(bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		res.Update = up
		res.Format = "gob"
		return res, nil
	}
	t, err := memo.LoadFlatTable(body)
	if err != nil {
		return nil, fmt.Errorf("cloud: flat table payload: %w", err)
	}
	up, err := updateFromFlatHeaders(resp, game, t)
	if err != nil {
		return nil, err
	}
	res.Update = up
	res.Format = "flat"
	return res, nil
}

// updateFromFlatHeaders assembles a TableUpdate around a flat table from
// the X-Snip-* response headers (the metadata a raw-image response
// cannot carry in-band).
func updateFromFlatHeaders(resp *http.Response, game string, t *memo.FlatTable) (*TableUpdate, error) {
	up := &TableUpdate{Game: resp.Header.Get("X-Snip-Game"), Selection: t.Selection(), Table: t}
	if up.Game == "" {
		up.Game = game
	}
	if v, err := strconv.Atoi(resp.Header.Get("X-Snip-Version")); err == nil {
		up.Version = v
	}
	if n, err := strconv.Atoi(resp.Header.Get("X-Snip-Records")); err == nil {
		up.ProfileRecords = n
	}
	if pm := resp.Header.Get("X-Snip-Pfi"); pm != "" {
		if err := json.Unmarshal([]byte(pm), &up.Metrics); err != nil {
			return nil, fmt.Errorf("cloud: bad X-Snip-Pfi header: %w", err)
		}
	}
	return up, nil
}

// tableWireSize is what serving up as a full OTA payload puts on the
// wire: the raw image for a flat table, the gob encoding otherwise.
func tableWireSize(up *TableUpdate) units.Size {
	if flat, ok := up.Table.(*memo.FlatTable); ok {
		return units.Size(len(flat.Image()))
	}
	var cw countingWriter
	if err := EncodeUpdate(&cw, up); err != nil {
		return 0
	}
	return units.Size(cw.n)
}

// countingWriter measures encoded size without buffering.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) { c.n += int64(len(p)); return len(p), nil }
