package cloud

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"io"
	"net/http"
	"strings"
	"testing"

	"snip/internal/trace"
)

// TestUploadOversizedRejected: a body past MaxUploadBytes answers 413
// and bumps the oversize counter, not the corrupt one.
func TestUploadOversizedRejected(t *testing.T) {
	svc, srv := testServer(t)
	// Valid magic plus a gob length prefix declaring a 16 MiB message,
	// backed by real bytes: the decoder reads through the size limiter
	// until it trips. (Junk bytes would fail the magic check first and
	// count as corrupt, not oversize.)
	big := []byte("SNIPEVTS1")
	big = append(big, 0xFC, 0x01, 0x00, 0x00, 0x00) // gob uint 16 MiB
	big = append(big, bytes.Repeat([]byte{0}, MaxUploadBytes+(1<<20))...)
	resp, _ := post(t, srv.URL+"/v1/upload?game=Colorphun&seed=1", bytes.NewReader(big))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	snap := svc.Metrics().Snapshot()
	if snap.Counters["snip_cloud_uploads_rejected_oversize_total"] != 1 {
		t.Fatal("oversize rejection not counted")
	}
	if snap.Counters["snip_cloud_uploads_rejected_corrupt_total"] != 0 {
		t.Fatal("oversize rejection miscounted as corrupt")
	}
}

// TestBatchOversizedCompressedRejected: a compressed body past
// MaxBatchBytes answers 413 before any decoding happens.
func TestBatchOversizedCompressedRejected(t *testing.T) {
	svc, srv := testServer(t)
	big := bytes.Repeat([]byte("x"), MaxBatchBytes+1)
	resp, _ := post(t, srv.URL+"/v1/upload-batch?game=Colorphun", bytes.NewReader(big))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	snap := svc.Metrics().Snapshot()
	if snap.Counters["snip_cloud_uploads_rejected_oversize_total"] != 1 {
		t.Fatal("oversize rejection not counted")
	}
}

// gzipBomb builds a syntactically valid SNIPBTCH1 body whose gob message
// decompresses past the server's decoded cap: correct magic, valid gzip,
// valid CRC trailer — only the decoded-size guard can stop it.
func gzipBomb(t *testing.T, decoded int) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("SNIPBTCH1")
	crc := crc32.NewIEEE()
	zw := gzip.NewWriter(io.MultiWriter(&buf, crc))
	header := []byte{0xFC, byte(decoded >> 24), byte(decoded >> 16), byte(decoded >> 8), byte(decoded)}
	if _, err := zw.Write(header); err != nil {
		t.Fatal(err)
	}
	zeros := make([]byte, 1<<16)
	for written := 0; written < decoded; written += len(zeros) {
		if _, err := zw.Write(zeros); err != nil {
			t.Fatal(err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("SNPC")
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc.Sum32())
	buf.Write(sum[:])
	return buf.Bytes()
}

// TestBatchGzipBombRejected: the bomb passes the compressed-size check
// and the checksum, and dies at the decoded cap with 413.
func TestBatchGzipBombRejected(t *testing.T) {
	svc, srv := testServer(t)
	bomb := gzipBomb(t, MaxBatchDecodedBytes+(1<<20))
	if len(bomb) >= MaxBatchBytes {
		t.Fatalf("bomb is %d bytes on the wire; it must fit under the compressed cap to prove the decoded cap works", len(bomb))
	}
	resp, body := post(t, srv.URL+"/v1/upload-batch?game=Colorphun", bytes.NewReader(bomb))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d body %q, want 413", resp.StatusCode, body)
	}
	snap := svc.Metrics().Snapshot()
	if snap.Counters["snip_cloud_uploads_rejected_oversize_total"] != 1 {
		t.Fatal("bomb not counted as oversize")
	}
	if snap.Counters["snip_cloud_uploads_rejected_corrupt_total"] != 0 {
		t.Fatal("bomb miscounted as corrupt")
	}
}

// TestBatchCorruptCounted: a flipped bit in an otherwise valid batch is
// caught by the CRC trailer, answered 400, and counted as corrupt.
func TestBatchCorruptCounted(t *testing.T) {
	svc, srv := testServer(t)
	log := &trace.EventLog{Game: "Colorphun", Events: []trace.LoggedEvent{
		{Type: "touch", Seq: 1, Time: 1000, Values: []int64{3}},
	}}
	var buf bytes.Buffer
	err := trace.EncodeBatch(&buf, &trace.SessionBatch{
		Game: "Colorphun", Sessions: []trace.SessionEvents{{Seed: 1, Log: log}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	wire[len(wire)/2] ^= 0x20
	resp, body := post(t, srv.URL+"/v1/upload-batch?game=Colorphun", bytes.NewReader(wire))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d body %q, want 400", resp.StatusCode, body)
	}
	if !strings.Contains(body, "checksum") {
		t.Fatalf("body %q, want a checksum message", body)
	}
	snap := svc.Metrics().Snapshot()
	if snap.Counters["snip_cloud_uploads_rejected_corrupt_total"] != 1 {
		t.Fatal("corrupt rejection not counted")
	}
}

// TestBatchTrailerlessCounted: the previous release's framing — magic +
// gzip(gob), no CRC trailer — answers 400 and lands in the trailerless
// counter, not the corrupt one, so an incomplete fleet upgrade is
// distinguishable from wire corruption during rollout.
func TestBatchTrailerlessCounted(t *testing.T) {
	svc, srv := testServer(t)
	log := &trace.EventLog{Game: "Colorphun", Events: []trace.LoggedEvent{
		{Type: "touch", Seq: 1, Time: 1000, Values: []int64{3}},
	}}
	var buf bytes.Buffer
	err := trace.EncodeBatch(&buf, &trace.SessionBatch{
		Game: "Colorphun", Sessions: []trace.SessionEvents{{Seed: 1, Log: log}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()[:buf.Len()-8] // strip "SNPC" + CRC32
	resp, body := post(t, srv.URL+"/v1/upload-batch?game=Colorphun", bytes.NewReader(wire))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d body %q, want 400", resp.StatusCode, body)
	}
	snap := svc.Metrics().Snapshot()
	if snap.Counters["snip_cloud_uploads_rejected_trailerless_total"] != 1 {
		t.Fatal("trailerless rejection not counted")
	}
	if snap.Counters["snip_cloud_uploads_rejected_corrupt_total"] != 0 {
		t.Fatal("trailerless rejection miscounted as corrupt")
	}
}

// TestGuardEndpointDrivesHealthz walks the degraded→recovered cycle: an
// open-breaker report flips /v1/healthz to 503/degraded with a failing
// guard check; a closed-breaker report recovers it.
func TestGuardEndpointDrivesHealthz(t *testing.T) {
	svc, srv := testServer(t)
	client := NewClient(srv.URL)

	report := func(open bool, rollbacks int64) {
		t.Helper()
		err := client.ReportGuard("Colorphun", GuardStatus{
			BreakerOpen: open, ShadowChecks: 40, Mispredicts: 6,
			Trips: 1, Rollbacks: rollbacks, Generation: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	guardCheck := func(reply string) (ok bool, found bool) {
		t.Helper()
		var parsed struct {
			Status string `json:"status"`
			Checks []struct {
				Name string `json:"name"`
				OK   bool   `json:"ok"`
			} `json:"checks"`
		}
		if err := json.Unmarshal([]byte(reply), &parsed); err != nil {
			t.Fatal(err)
		}
		for _, c := range parsed.Checks {
			if c.Name == "guard_breaker_Colorphun" {
				return c.OK, true
			}
		}
		return false, false
	}

	report(true, 0)
	resp, body := get(t, srv.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: healthz status %d, want 503", resp.StatusCode)
	}
	if ok, found := guardCheck(body); !found || ok {
		t.Fatalf("open breaker: guard check found=%v ok=%v, want failing check", found, ok)
	}

	report(false, 1)
	resp, body = get(t, srv.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("closed breaker: healthz status %d, want 200", resp.StatusCode)
	}
	if ok, found := guardCheck(body); !found || !ok {
		t.Fatalf("closed breaker: guard check found=%v ok=%v, want passing check", found, ok)
	}

	st, ok := svc.GuardStatusFor("Colorphun")
	if !ok || st.Rollbacks != 1 || st.BreakerOpen {
		t.Fatalf("stored guard status %+v, want the recovery report", st)
	}
	if _, ok := svc.GuardStatusFor("NeverReported"); ok {
		t.Fatal("guard status invented for an unreported game")
	}
}

// TestGuardEndpointValidation: missing game and junk bodies answer 400.
func TestGuardEndpointValidation(t *testing.T) {
	_, srv := testServer(t)
	resp, _ := post(t, srv.URL+"/v1/guard", strings.NewReader("{}"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing game: status %d, want 400", resp.StatusCode)
	}
	resp, _ = post(t, srv.URL+"/v1/guard?game=Colorphun", strings.NewReader("not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("junk body: status %d, want 400", resp.StatusCode)
	}
}
