package cloud

// Measurement harness reproducing the EXPERIMENTS.md "Sharded profiler
// & delta OTA" per-game table: boot a profile, then per refresh round
// ingest one session, rebuild, and compare the negotiated delta against
// the full image the device would otherwise fetch at that same swap.
// Skipped in the normal suite; run with:
//
//	SNIP_MEASURE_OTA=1 go test -run TestMeasureOTA -v ./internal/cloud

import (
	"fmt"
	"net/http/httptest"
	"os"
	"testing"

	"snip/internal/games"
	"snip/internal/memo"
	"snip/internal/pfi"
	"snip/internal/schemes"
	"snip/internal/units"
)

func TestMeasureOTA(t *testing.T) {
	if os.Getenv("SNIP_MEASURE_OTA") == "" {
		t.Skip("measurement harness; set SNIP_MEASURE_OTA=1")
	}
	const boot = 3
	const rounds = 4
	for _, game := range games.Names() {
		svc := NewShardedService(pfi.DefaultConfig(), 2)
		srv := httptest.NewServer(svc.Handler())
		client := NewClient(srv.URL)
		upload := func(seed uint64) {
			r, err := schemes.Run(schemes.Config{
				Game: game, Seed: seed, Duration: 10 * units.Second,
				Scheme: schemes.Baseline, CollectEventLog: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := client.Upload(game, seed, r.EventLog); err != nil {
				t.Fatal(err)
			}
		}
		seed := uint64(6100)
		for i := 0; i < boot; i++ {
			upload(seed)
			seed++
		}
		if err := client.Rebuild(game); err != nil {
			t.Fatal(err)
		}
		up, err := client.FetchTable(game)
		if err != nil {
			t.Fatal(err)
		}
		base := up.Table.(*memo.FlatTable)
		baseVer := up.Version
		var deltaSum, fullSum int64
		var swaps int
		for i := 0; i < rounds; i++ {
			upload(seed)
			seed++
			if err := client.Rebuild(game); err != nil {
				t.Fatal(err)
			}
			ur, err := client.FetchUpdate(game, baseVer, base)
			if err != nil {
				t.Fatal(err)
			}
			if ur.NotModified || ur.Format != "delta" || ur.FullFallback {
				t.Fatalf("%s round %d: format=%q fallback=%v", game, i, ur.Format, ur.FullFallback)
			}
			flat := ur.Update.Table.(*memo.FlatTable)
			deltaSum += int64(ur.DeltaBytes)
			fullSum += int64(len(flat.Image()))
			swaps++
			base, baseVer = flat, ur.Update.Version
		}
		fmt.Printf("%-14s rows=%5d image=%8dB delta/swap=%7dB full/swap=%8dB ratio=%6.1fx\n",
			game, base.Rows(), len(base.Image()),
			deltaSum/int64(swaps), fullSum/int64(swaps),
			float64(fullSum)/float64(deltaSum))
		srv.Close()
		svc.Close()
	}
}
