package cloud

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"snip/internal/obs"
	"snip/internal/trace"
)

func telemetryWire(t *testing.T, b *trace.TelemetryBatch) *bytes.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.EncodeTelemetry(&buf, b); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes())
}

func TestTelemetryEndpointAndFleetz(t *testing.T) {
	svc, srv := testServer(t)
	batch := &trace.TelemetryBatch{Game: "Colorphun", Records: []trace.TelemetryRecord{
		{Device: 0, SimTimeUS: 10_000_000, Generation: 1,
			Sessions: 1, Events: 100, Lookups: 100, Hits: 80,
			ShadowChecks: 10, SavedInstr: 2400, P99LookupNS: 900,
			QueueDepth: 1, QueueCap: 4, TelemetryCap: 8},
		{Device: 1, SimTimeUS: 20_000_000, Generation: 2,
			Sessions: 1, Events: 100, Lookups: 100, Hits: 80,
			ShadowChecks: 10, Mispredicts: 9, QueueCap: 4, TelemetryCap: 8},
	}}
	resp, body := post(t, srv.URL+"/v1/telemetry?game=Colorphun", telemetryWire(t, batch))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("telemetry post: %d %s", resp.StatusCode, body)
	}

	resp, body = get(t, srv.URL+"/v1/fleetz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleetz: %d %s", resp.StatusCode, body)
	}
	var reply FleetzReply
	if err := json.Unmarshal([]byte(body), &reply); err != nil {
		t.Fatalf("fleetz json: %v\n%s", err, body)
	}
	if reply.Batches != 1 || reply.Records != 2 || len(reply.Games) != 1 {
		t.Fatalf("fleetz totals: %+v", reply)
	}
	fg := reply.Games[0]
	if fg.Game != "Colorphun" || fg.LiveGeneration != 2 || fg.PrevGeneration != 1 {
		t.Fatalf("live/prev tracking: %+v", fg)
	}
	if len(fg.Generations) != 2 {
		t.Fatalf("generations: %+v", fg.Generations)
	}
	// Generation 2 serves the same raw hit rate but mispredicts 90% of
	// its shadow checks, so its effective hit rate collapses and the
	// drift signal reads the regression raw hit rate cannot see.
	g1, g2 := fg.Generations[0], fg.Generations[1]
	if g1.HitRate != g2.HitRate {
		t.Fatalf("raw hit rates should match: %v vs %v", g1.HitRate, g2.HitRate)
	}
	if g2.EffectiveHitRate >= g1.EffectiveHitRate {
		t.Fatalf("effective hit rate should collapse under mispredicts: gen1=%v gen2=%v",
			g1.EffectiveHitRate, g2.EffectiveHitRate)
	}
	if fg.Drift <= driftThreshold || fg.DriftVerdict != "drifting" {
		t.Fatalf("drift %v verdict %q, want drifting", fg.Drift, fg.DriftVerdict)
	}
	if len(g1.HitHistory) == 0 {
		t.Fatal("no hit history retained for sparklines")
	}

	// The derived signals surface as /v1/metrics gauges.
	snap := svc.Metrics().Snapshot()
	if v := snap.Gauges[`snip_cloud_fleet_drift_permille{game="Colorphun"}`]; v <= 0 {
		t.Fatalf("drift gauge %d, want positive (regression)", v)
	}
	if snap.Counters["snip_cloud_telemetry_batches_total"] != 1 ||
		snap.Counters["snip_cloud_telemetry_records_total"] != 2 {
		t.Fatal("telemetry ingest counters off")
	}
}

func TestTelemetryEndpointRejections(t *testing.T) {
	svc, srv := testServer(t)
	// Missing game.
	resp, _ := post(t, srv.URL+"/v1/telemetry",
		telemetryWire(t, &trace.TelemetryBatch{Game: "Colorphun", Records: make([]trace.TelemetryRecord, 1)}))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing game: %d", resp.StatusCode)
	}
	// Corrupt body.
	resp, _ = post(t, srv.URL+"/v1/telemetry?game=Colorphun", strings.NewReader("SNIPTEL1garbage"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt body: %d", resp.StatusCode)
	}
	// Game mismatch.
	resp, _ = post(t, srv.URL+"/v1/telemetry?game=Other",
		telemetryWire(t, &trace.TelemetryBatch{Game: "Colorphun", Records: make([]trace.TelemetryRecord, 1)}))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("game mismatch: %d", resp.StatusCode)
	}
	// Empty batch.
	resp, _ = post(t, srv.URL+"/v1/telemetry?game=Colorphun",
		telemetryWire(t, &trace.TelemetryBatch{Game: "Colorphun"}))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: %d", resp.StatusCode)
	}
	if n := svc.Metrics().Snapshot().Counters["snip_cloud_uploads_rejected_corrupt_total"]; n != 1 {
		t.Fatalf("corrupt rejections %d, want 1", n)
	}
}

func TestTelemetryAggregatorBounds(t *testing.T) {
	a := newTelemetryAggregator()
	rec := func(gen, tUS int64) []trace.TelemetryRecord {
		return []trace.TelemetryRecord{{SimTimeUS: tUS, Generation: gen, Lookups: 10, Hits: 5}}
	}
	// Game cap: the 65th distinct game is refused.
	for i := 0; i < maxTelemetryGames; i++ {
		if !a.ingest(string(rune('a'+i%26))+string(rune('0'+i/26)), rec(1, 1)) {
			t.Fatalf("game %d rejected under the cap", i)
		}
	}
	if a.ingest("overflow", rec(1, 1)) {
		t.Fatal("game cap not enforced")
	}
	// Generation cap: only the newest generations are retained.
	b := newTelemetryAggregator()
	for gen := int64(1); gen <= maxTelemetryGenerations+3; gen++ {
		b.ingest("g", rec(gen, gen*1_000_000))
	}
	gt := b.games["g"]
	if len(gt.gens) != maxTelemetryGenerations {
		t.Fatalf("retained %d generations, want %d", len(gt.gens), maxTelemetryGenerations)
	}
	if _, ok := gt.gens[1]; ok {
		t.Fatal("lowest generation not evicted")
	}
	if _, ok := gt.gens[maxTelemetryGenerations+3]; !ok {
		t.Fatal("newest generation missing")
	}
}

func TestBuildInfoGauge(t *testing.T) {
	svc, srv := testServer(t)
	_, body := get(t, srv.URL+"/v1/metrics")
	if !strings.Contains(body, "# TYPE snip_build_info gauge") {
		t.Fatal("snip_build_info missing TYPE line")
	}
	if !strings.Contains(body, `snip_build_info{layout_version="1",tables="flat"} 1`) {
		t.Fatalf("flat backend not reported active:\n%s", body)
	}
	svc.SetLegacyTables(true)
	_, body = get(t, srv.URL+"/v1/metrics")
	if !strings.Contains(body, `snip_build_info{layout_version="1",tables="gob"} 1`) ||
		!strings.Contains(body, `snip_build_info{layout_version="1",tables="flat"} 0`) {
		t.Fatalf("backend flip not reflected:\n%s", body)
	}
}

func TestUploadTelemetryClient(t *testing.T) {
	svc, srv := testServer(t)
	c := NewClient(srv.URL)
	recs := []trace.TelemetryRecord{{Device: 2, SimTimeUS: 5_000_000, Generation: 1, Lookups: 4, Hits: 2}}
	br, err := c.UploadTelemetry("Colorphun", recs, obs.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	if br.Wire == 0 {
		t.Fatal("no wire bytes reported")
	}
	if got := svc.Fleetz().Records; got != 1 {
		t.Fatalf("cloud folded %d records, want 1", got)
	}
}
