// Package cloud implements SNIP's offline profiler (§V-B): the service
// that receives events-only logs from devices, replays them against the
// emulator (our deterministic game engine plays the AOSP emulator's
// role), accumulates the full input/output profile, runs PFI, and ships
// the resulting lookup table back to devices as an OTA update. It also
// implements the continuous-learning loop of Fig. 12 and an HTTP
// transport so a real device/daemon split can be exercised end to end.
package cloud

import (
	"fmt"
	"sync"

	"snip/internal/events"
	"snip/internal/games"
	"snip/internal/memo"
	"snip/internal/parallel"
	"snip/internal/pfi"
	"snip/internal/trace"
	"snip/internal/units"
)

// Replay re-executes an events-only log against a fresh instance of the
// game (the emulator step): it reconstructs the full input/output profile
// that the device-side recording deliberately omitted.
//
// The log's events must carry the same seed-deterministic game content as
// the device run, which the paper achieves by replaying the recorded
// inputs "in the same manner as if the user is playing the game once
// again in the emulator"; here the game seed travels with the replay.
func Replay(gameName string, seed uint64, log *trace.EventLog) (*trace.Dataset, error) {
	g, err := games.New(gameName)
	if err != nil {
		return nil, err
	}
	g.Reset(seed)
	handled := make(map[string]bool)
	for _, t := range g.Types() {
		handled[t.String()] = true
	}
	ds := &trace.Dataset{Game: gameName}
	for _, le := range log.Events {
		// Unknown names mean a corrupt log; known-but-unregistered types
		// are simply not delivered, as on the device.
		t, err := eventTypeByName(le.Type)
		if err != nil {
			return nil, err
		}
		if !handled[le.Type] {
			continue
		}
		ev := events.New(t, le.Seq, le.Time, le.Values...)
		exec := g.Process(ev)
		ds.Append(exec.Record)
	}
	return ds, nil
}

func eventTypeByName(name string) (events.Type, error) {
	for t := events.Type(0); int(t) < events.NumTypes; t++ {
		if t.String() == name {
			return t, nil
		}
	}
	return 0, fmt.Errorf("cloud: unknown event type %q", name)
}

// SessionLog is one uploaded session awaiting replay: the events-only
// log plus the seed that regenerates the game content it was played on.
type SessionLog struct {
	Seed uint64
	Log  *trace.EventLog
}

// ReplayBatch replays many sessions against the emulator fleet — the
// paper's cloud profiler runs exactly this fan-out of parallel emulator
// replays (§VI, Fig. 10). Each session replays on its own worker (each
// builds a private game instance); results come back in input order, so
// the batch is byte-identical to replaying the logs serially. workers
// <= 0 selects parallel.DefaultWorkers().
func ReplayBatch(gameName string, workers int, logs []SessionLog) ([]*trace.Dataset, error) {
	return parallel.Map(workers, len(logs), func(i int) (*trace.Dataset, error) {
		return Replay(gameName, logs[i].Seed, logs[i].Log)
	})
}

// TableUpdate is the OTA payload the cloud sends back to devices: the
// necessary-input selection and the populated lookup table. The table
// is a *memo.FlatTable by default (the image-serving path) or a
// *memo.SnipTable when legacy tables are selected.
type TableUpdate struct {
	Game      string
	Version   int
	Selection memo.Selection
	Table     memo.Table
	// Quality captured on the profile at build time.
	Metrics pfi.Metrics
	// ProfileRecords is how many records the table was trained on.
	ProfileRecords int
}

// DefaultMaxDeltaChain is how many consecutive table deltas a profiler
// retains per game — the longest chain /v1/update will ship before
// falling back to the full image. Short on purpose: a device more than
// a few generations behind re-downloads the table outright rather than
// replaying history.
const DefaultMaxDeltaChain = 4

// Profiler is the cloud-side state for one game: the accumulated profile
// and the latest table build. Safe for concurrent use.
type Profiler struct {
	mu      sync.Mutex
	game    string
	cfg     pfi.Config
	profile *trace.Dataset
	version int
	latest  *TableUpdate
	legacy  bool

	// Delta OTA state (flat builds only): the previous generation's flat
	// table and the verified chain of consecutive deltas ending at the
	// latest version, oldest first, at most deltaCap long.
	prevFlat *memo.FlatTable
	deltas   []*trace.TableDelta
	deltaCap int
}

// NewProfiler creates a profiler for one game. Rebuilds produce flat
// tables unless SetLegacyTables switches the profiler to the map-backed
// path.
func NewProfiler(game string, cfg pfi.Config) *Profiler {
	return &Profiler{game: game, cfg: cfg, profile: &trace.Dataset{Game: game}, deltaCap: DefaultMaxDeltaChain}
}

// SetLegacyTables selects the map-backed SnipTable for future rebuilds
// (the A/B flag for the flat table core); false restores the default
// flat builds. Legacy tables have no delta form, so enabling drops any
// retained chain.
func (p *Profiler) SetLegacyTables(v bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.legacy = v
	if v {
		p.prevFlat, p.deltas = nil, nil
	}
}

// SetDeltaCap bounds the retained delta chain (values < 1 restore
// DefaultMaxDeltaChain).
func (p *Profiler) SetDeltaCap(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n < 1 {
		n = DefaultMaxDeltaChain
	}
	p.deltaCap = n
	if len(p.deltas) > n {
		p.deltas = append([]*trace.TableDelta(nil), p.deltas[len(p.deltas)-n:]...)
	}
}

// Game returns the game this profiler serves.
func (p *Profiler) Game() string { return p.game }

// ProfileLen returns the number of accumulated records.
func (p *Profiler) ProfileLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.profile.Len()
}

// IngestLog replays an events-only log (with its session seed) and adds
// the reconstructed records to the profile.
func (p *Profiler) IngestLog(seed uint64, log *trace.EventLog) error {
	ds, err := Replay(p.game, seed, log)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.profile.Merge(ds)
	return nil
}

// IngestLogs replays a batch of events-only logs in parallel and merges
// the reconstructed records into the profile in upload order. workers
// <= 0 selects parallel.DefaultWorkers().
func (p *Profiler) IngestLogs(workers int, logs []SessionLog) error {
	batch, err := ReplayBatch(p.game, workers, logs)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ds := range batch {
		p.profile.Merge(ds)
	}
	return nil
}

// IngestDataset adds an already-reconstructed profile (e.g. from the
// development-time testing path rather than user uploads).
func (p *Profiler) IngestDataset(ds *trace.Dataset) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.profile.Merge(ds)
}

// Rebuild runs PFI over the accumulated profile and produces a fresh OTA
// update.
func (p *Profiler) Rebuild() (*TableUpdate, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.profile.Len() == 0 {
		return nil, fmt.Errorf("cloud: no profile data for %s", p.game)
	}
	cfg := p.cfg
	if g, err := games.New(p.game); err == nil {
		if ov := g.Overrides(); len(ov) > 0 && cfg.ForceInclude == nil {
			cfg.ForceInclude = make(map[string]bool, len(ov))
			for _, f := range ov {
				cfg.ForceInclude[f] = true
			}
		}
	}
	res, err := pfi.Run(p.profile, cfg)
	if err != nil {
		return nil, err
	}
	var table memo.Table = memo.BuildSnip(p.profile, res.Selection)
	if !p.legacy {
		table.Freeze()
		flat, err := memo.Flatten(table)
		if err != nil {
			return nil, fmt.Errorf("cloud: flat table build for %s: %w", p.game, err)
		}
		table = flat
		// Grow the delta chain: diff the previous image against this one
		// and SELF-VERIFY by applying the delta back onto the previous
		// table — only a delta proven to reproduce the new image
		// byte-exactly may ever be served. A diff or verify failure (or a
		// delta no smaller than the image it replaces, e.g. after a
		// selection change rewrote every key) breaks the chain instead:
		// devices behind that point get the full image.
		if p.prevFlat != nil {
			d, err := memo.DiffFlat(p.game, p.version, p.version+1, p.prevFlat, flat)
			ok := err == nil
			if ok {
				_, verr := memo.ApplyDelta(p.prevFlat, d)
				ok = verr == nil
			}
			if ok {
				if sz, err := trace.DeltaTransferSize(&trace.DeltaChain{Game: p.game, Deltas: []trace.TableDelta{*d}}); err != nil || int(sz) >= len(flat.Image()) {
					ok = false
				}
			}
			if ok {
				p.deltas = append(p.deltas, d)
				if len(p.deltas) > p.deltaCap {
					p.deltas = append([]*trace.TableDelta(nil), p.deltas[len(p.deltas)-p.deltaCap:]...)
				}
			} else {
				p.deltas = nil
			}
		}
		p.prevFlat = flat
	}
	p.version++
	p.latest = &TableUpdate{
		Game:           p.game,
		Version:        p.version,
		Selection:      res.Selection,
		Table:          table,
		Metrics:        res.Final,
		ProfileRecords: p.profile.Len(),
	}
	return p.latest, nil
}

// Latest returns the most recent update, or nil if none was built.
func (p *Profiler) Latest() *TableUpdate {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.latest
}

// DeltaChainFrom returns the consecutive deltas that carry a device
// from generation gen to the latest version, oldest first, or nil when
// the chain cannot serve it (device already current or ahead, never
// fetched a table, too far behind for the retained chain, or the chain
// was broken) — the caller then serves the full image.
func (p *Profiler) DeltaChainFrom(gen int) *trace.DeltaChain {
	p.mu.Lock()
	defer p.mu.Unlock()
	if gen <= 0 || p.latest == nil || gen >= p.version {
		return nil
	}
	needed := p.version - gen
	if needed > len(p.deltas) {
		return nil
	}
	links := p.deltas[len(p.deltas)-needed:]
	if links[0].FromVersion != gen {
		return nil
	}
	c := &trace.DeltaChain{Game: p.game, Deltas: make([]trace.TableDelta, len(links))}
	for i, d := range links {
		c.Deltas[i] = *d
	}
	return c
}

// DeltaChainLen reports how many consecutive deltas are currently
// retained (the /v1/shardz rollup).
func (p *Profiler) DeltaChainLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.deltas)
}

// Learner drives the continuous-learning loop of Fig. 12 (Option 2 in
// §V-B): each epoch, a played session's events are uploaded, the profile
// grows, PFI retrains, and the next session runs against the fresher
// table. It wraps a Profiler with the epoch bookkeeping.
type Learner struct {
	Profiler *Profiler
	// InitialTruncate, when positive, caps the profile at that many
	// records before the FIRST rebuild — the paper's artificially
	// insufficient initial profile.
	InitialTruncate int

	epochs int
}

// NewLearner builds a continuous learner over a fresh profiler.
func NewLearner(game string, cfg pfi.Config, initialTruncate int) *Learner {
	return &Learner{Profiler: NewProfiler(game, cfg), InitialTruncate: initialTruncate}
}

// Epoch ingests one more play session and rebuilds the table. On the
// first epoch, the profile is truncated to the configured insufficient
// size before training.
func (l *Learner) Epoch(session *trace.Dataset) (*TableUpdate, error) {
	l.epochs++
	if l.epochs == 1 && l.InitialTruncate > 0 {
		l.Profiler.IngestDataset(session.Truncate(l.InitialTruncate))
	} else {
		l.Profiler.IngestDataset(session)
	}
	return l.Profiler.Rebuild()
}

// Epochs returns how many sessions have been ingested.
func (l *Learner) Epochs() int { return l.epochs }

// BackendCost estimates the cloud-side processing cost of building a
// table from a profile, in the units the paper reports (§VII-C): CPU-core
// seconds on a Xeon-class server, dominated by the PFI search — per field
// and elimination round, one pass over the profile.
func BackendCost(profileRecords, inputFields int) (coreSeconds float64) {
	// One pass over R records with F fields costs ~R×F key hashes; the
	// search runs O(F²) passes (importance + elimination) at ≈5M
	// field-hashes per core-second.
	passes := float64(inputFields * inputFields)
	return passes * float64(profileRecords) * float64(inputFields) / 5e6 / 100
}

// ShrinkSummary reports the table-shrink headline of §VII-C for a built
// update: the naive table size the profile implies versus the deployed
// SNIP table size.
func ShrinkSummary(profile *trace.Dataset, up *TableUpdate) (naive, deployed units.Size) {
	n := memo.BuildNaive(profile)
	return n.Size(), up.Table.Size()
}
