package cloud

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"snip/internal/pfi"
	"snip/internal/schemes"
	"snip/internal/trace"
	"snip/internal/units"
)

const testDur = 15 * units.Second

func record(t *testing.T, game string, seed uint64) *schemes.Result {
	t.Helper()
	r, err := schemes.Run(schemes.Config{
		Game: game, Seed: seed, Duration: testDur,
		Scheme: schemes.Baseline, CollectTrace: true, CollectEventLog: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestReplayReconstructsProfile is the keystone of the cloud design: the
// emulator replay of an events-only log must reproduce EXACTLY the full
// profile the device would have recorded — that is why uploading only
// events is enough.
func TestReplayReconstructsProfile(t *testing.T) {
	for _, game := range []string{"Colorphun", "CandyCrush", "ChaseWhisply"} {
		dev := record(t, game, 42)
		replayed, err := Replay(game, 42, dev.EventLog)
		if err != nil {
			t.Fatal(err)
		}
		if replayed.Len() != dev.Dataset.Len() {
			t.Fatalf("%s: replay %d records vs device %d", game, replayed.Len(), dev.Dataset.Len())
		}
		for i := range replayed.Records {
			a, b := replayed.Records[i], dev.Dataset.Records[i]
			if a.InputHash(nil) != b.InputHash(nil) || a.OutputHash() != b.OutputHash() {
				t.Fatalf("%s: record %d (%s) diverged in replay", game, i, a.EventType)
			}
		}
	}
}

func TestReplayRejectsUnknownEventType(t *testing.T) {
	log := &trace.EventLog{Game: "Colorphun", Events: []trace.LoggedEvent{
		{Type: "warp", Values: []int64{1}},
	}}
	if _, err := Replay("Colorphun", 1, log); err == nil {
		t.Fatal("unknown event type accepted")
	}
	if _, err := Replay("NoSuchGame", 1, &trace.EventLog{}); err == nil {
		t.Fatal("unknown game accepted")
	}
}

// TestReplayBatchMatchesSerial checks the fan-out path: a parallel batch
// replay must produce exactly the datasets serial replay would, in upload
// order, for any worker count.
func TestReplayBatchMatchesSerial(t *testing.T) {
	const game = "Colorphun"
	var logs []SessionLog
	var want []*trace.Dataset
	for seed := uint64(1); seed <= 4; seed++ {
		dev := record(t, game, seed)
		logs = append(logs, SessionLog{Seed: seed, Log: dev.EventLog})
		want = append(want, dev.Dataset)
	}
	for _, workers := range []int{1, 4, 8} {
		got, err := ReplayBatch(game, workers, logs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d datasets vs %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].Len() != want[i].Len() {
				t.Fatalf("workers=%d: dataset %d has %d records vs %d", workers, i, got[i].Len(), want[i].Len())
			}
			for j := range got[i].Records {
				a, b := got[i].Records[j], want[i].Records[j]
				if a.InputHash(nil) != b.InputHash(nil) || a.OutputHash() != b.OutputHash() {
					t.Fatalf("workers=%d: dataset %d record %d diverged", workers, i, j)
				}
			}
		}
	}

	// IngestLogs must equal ingesting the same logs one by one.
	serial := NewProfiler(game, pfi.DefaultConfig())
	for _, l := range logs {
		if err := serial.IngestLog(l.Seed, l.Log); err != nil {
			t.Fatal(err)
		}
	}
	batch := NewProfiler(game, pfi.DefaultConfig())
	if err := batch.IngestLogs(4, logs); err != nil {
		t.Fatal(err)
	}
	if serial.ProfileLen() != batch.ProfileLen() {
		t.Fatalf("batch profile %d records vs serial %d", batch.ProfileLen(), serial.ProfileLen())
	}
	for i := range serial.profile.Records {
		a, b := serial.profile.Records[i], batch.profile.Records[i]
		if a.InputHash(nil) != b.InputHash(nil) || a.OutputHash() != b.OutputHash() {
			t.Fatalf("batch profile record %d diverged from serial ingest", i)
		}
	}
}

func TestProfilerRebuild(t *testing.T) {
	p := NewProfiler("Greenwall", pfi.DefaultConfig())
	if _, err := p.Rebuild(); err == nil {
		t.Fatal("rebuild on empty profile accepted")
	}
	dev := record(t, "Greenwall", 7)
	if err := p.IngestLog(7, dev.EventLog); err != nil {
		t.Fatal(err)
	}
	if p.ProfileLen() != dev.Dataset.Len() {
		t.Fatalf("profile %d records", p.ProfileLen())
	}
	up, err := p.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if up.Version != 1 || up.Table.Rows() == 0 {
		t.Fatalf("update %+v", up)
	}
	if p.Latest() != up {
		t.Fatal("Latest() mismatch")
	}
	// Second ingest bumps the version.
	p.IngestDataset(record(t, "Greenwall", 8).Dataset)
	up2, err := p.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if up2.Version != 2 || up2.ProfileRecords <= up.ProfileRecords {
		t.Fatal("version/profile bookkeeping broken")
	}
}

func TestLearnerTruncatesFirstEpoch(t *testing.T) {
	l := NewLearner("Colorphun", pfi.DefaultConfig(), 100)
	ds := record(t, "Colorphun", 3).Dataset
	if _, err := l.Epoch(ds); err != nil {
		t.Fatal(err)
	}
	if l.Profiler.ProfileLen() != 100 {
		t.Fatalf("first epoch profile %d, want the 100-record cap", l.Profiler.ProfileLen())
	}
	if _, err := l.Epoch(ds); err != nil {
		t.Fatal(err)
	}
	if l.Profiler.ProfileLen() != 100+ds.Len() {
		t.Fatalf("second epoch profile %d", l.Profiler.ProfileLen())
	}
	if l.Epochs() != 2 {
		t.Fatalf("epochs %d", l.Epochs())
	}
}

func TestUpdateEncodeDecode(t *testing.T) {
	p := NewProfiler("MemoryGame", pfi.DefaultConfig())
	p.IngestDataset(record(t, "MemoryGame", 9).Dataset)
	up, err := p.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeUpdate(&buf, up); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUpdate(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Game != up.Game || got.Version != up.Version {
		t.Fatal("metadata lost")
	}
	if got.Table.Rows() != up.Table.Rows() {
		t.Fatalf("rows %d vs %d", got.Table.Rows(), up.Table.Rows())
	}
	if _, err := DecodeUpdate(bytes.NewBufferString("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestHTTPServiceEndToEnd(t *testing.T) {
	svc := NewService(pfi.DefaultConfig())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)

	// No table yet.
	if _, err := client.FetchTable("Colorphun"); err == nil {
		t.Fatal("fetch before build should fail")
	}

	for seed := uint64(0xA1); seed <= 0xA3; seed++ {
		dev := record(t, "Colorphun", seed)
		if err := client.Upload("Colorphun", seed, dev.EventLog); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Rebuild("Colorphun"); err != nil {
		t.Fatal(err)
	}
	up, err := client.FetchTable("Colorphun")
	if err != nil {
		t.Fatal(err)
	}
	if up.Table.Rows() == 0 || up.Game != "Colorphun" {
		t.Fatalf("fetched update %+v", up)
	}

	// The fetched table actually works in a session.
	r, err := schemes.Run(schemes.Config{
		Game: "Colorphun", Seed: 1, Duration: testDur,
		Scheme: schemes.SNIP, Table: up.Table,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.SnippedEvents == 0 {
		t.Fatal("OTA table snipped nothing")
	}
}

func TestHTTPValidation(t *testing.T) {
	svc := NewService(pfi.DefaultConfig())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := NewClient(srv.URL)
	// Upload with a bogus body errors.
	if err := client.Rebuild("Nothing"); err == nil {
		t.Fatal("rebuild of unknown game should fail (empty profile)")
	}
}

func TestBackendCostMonotone(t *testing.T) {
	small := BackendCost(1000, 10)
	big := BackendCost(100000, 40)
	if small <= 0 || big <= small {
		t.Fatalf("backend cost not monotone: %v %v", small, big)
	}
}

func TestShrinkSummary(t *testing.T) {
	ds := record(t, "Colorphun", 5).Dataset
	p := NewProfiler("Colorphun", pfi.DefaultConfig())
	p.IngestDataset(ds)
	up, err := p.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	naive, deployed := ShrinkSummary(ds, up)
	if naive <= deployed {
		t.Fatalf("naive %v should dwarf deployed %v", naive, deployed)
	}
}
