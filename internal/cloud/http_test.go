package cloud

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"snip/internal/pfi"
)

func testServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	svc := NewService(pfi.DefaultConfig())
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return svc, srv
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func post(t *testing.T, url string, body io.Reader) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(b)
}

// TestMissingGameParam pins the shared validation: every game-keyed
// endpoint answers 400 with the same message when ?game= is absent.
func TestMissingGameParam(t *testing.T) {
	_, srv := testServer(t)
	cases := []struct{ method, path string }{
		{"POST", "/v1/upload"},
		{"POST", "/v1/rebuild"},
		{"GET", "/v1/table"},
		{"GET", "/v1/status"},
	}
	for _, c := range cases {
		var resp *http.Response
		var body string
		if c.method == "GET" {
			resp, body = get(t, srv.URL+c.path)
		} else {
			resp, body = post(t, srv.URL+c.path, nil)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s without game: status %d, want 400", c.method, c.path, resp.StatusCode)
		}
		if !strings.Contains(body, "missing game") {
			t.Errorf("%s %s: body %q, want the shared missing-game message", c.method, c.path, body)
		}
	}
}

func TestUploadBadSeed(t *testing.T) {
	_, srv := testServer(t)
	resp, body := post(t, srv.URL+"/v1/upload?game=Colorphun&seed=banana", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(body, "bad seed") {
		t.Fatalf("body %q, want a bad-seed message", body)
	}
}

func TestUploadCorruptBody(t *testing.T) {
	_, srv := testServer(t)
	resp, body := post(t, srv.URL+"/v1/upload?game=Colorphun&seed=1",
		bytes.NewReader([]byte("this is not a gob stream")))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(body, "bad log") {
		t.Fatalf("body %q, want a bad-log message", body)
	}
}

func TestTableBeforeRebuild(t *testing.T) {
	_, srv := testServer(t)
	resp, body := get(t, srv.URL+"/v1/table?game=Colorphun")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if !strings.Contains(body, "no table") {
		t.Fatalf("body %q, want a no-table message", body)
	}
}

// TestMetricsEndpoint drives real traffic through the service and then
// checks the exposition: request counters per endpoint, error counters
// for the 4xx paths, and business counters for uploads and rebuilds.
func TestMetricsEndpoint(t *testing.T) {
	svc, srv := testServer(t)
	client := NewClient(srv.URL)

	dev := record(t, "Colorphun", 0xA1)
	if err := client.Upload("Colorphun", 0xA1, dev.EventLog); err != nil {
		t.Fatal(err)
	}
	if err := client.Rebuild("Colorphun"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.FetchTable("Colorphun"); err != nil {
		t.Fatal(err)
	}
	// One deliberate error: missing game on status.
	if resp, _ := get(t, srv.URL+"/v1/status"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status without game: %d", resp.StatusCode)
	}

	resp, body := get(t, srv.URL+"/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, want := range []string{
		`snip_cloud_requests_total{endpoint="upload"} 1`,
		`snip_cloud_requests_total{endpoint="rebuild"} 1`,
		`snip_cloud_requests_total{endpoint="table"} 1`,
		`snip_cloud_request_errors_total{endpoint="status"} 1`,
		"snip_cloud_uploads_total 1",
		"snip_cloud_rebuilds_total 1",
		"snip_cloud_tables_served_total 1",
		`snip_cloud_table_version{game="Colorphun"} 1`,
		// Rebuild-time PFI search surfaces in the same exposition.
		"snip_pfi_types_total",
		`snip_cloud_request_ns_count{endpoint="upload"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The snapshot agrees with what the handlers counted.
	snap := svc.Metrics().Snapshot()
	if snap.Counters["snip_cloud_uploads_total"] != 1 {
		t.Errorf("snapshot uploads %d, want 1", snap.Counters["snip_cloud_uploads_total"])
	}
	if snap.Counters["snip_cloud_records_total"] == 0 {
		t.Error("no records counted for the ingested upload")
	}
}

// TestClientURLEscaping pins the url.Values construction: a game name
// with reserved characters must arrive intact, not mangled into extra
// parameters.
func TestClientURLEscaping(t *testing.T) {
	var seenGame string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seenGame = r.URL.Query().Get("game")
	}))
	defer srv.Close()
	client := NewClient(srv.URL)
	weird := "a game&x=1?y#z"
	if err := client.Rebuild(weird); err != nil {
		t.Fatal(err)
	}
	if seenGame != weird {
		t.Fatalf("server saw game %q, want %q", seenGame, weird)
	}
	if _, err := url.ParseRequestURI(client.endpoint("/v1/rebuild", url.Values{"game": {weird}})); err != nil {
		t.Fatalf("endpoint builds an invalid URL: %v", err)
	}
}

// TestClientTimeoutConfigured pins the default-client hardening.
func TestClientTimeoutConfigured(t *testing.T) {
	c := NewClient("http://127.0.0.1:0")
	if c.HTTP == http.DefaultClient {
		t.Fatal("client uses http.DefaultClient (no timeout)")
	}
	if c.HTTP.Timeout != DefaultClientTimeout {
		t.Fatalf("timeout %v, want %v", c.HTTP.Timeout, DefaultClientTimeout)
	}
}
