package cloud

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"snip/internal/obs"
	"snip/internal/pfi"
	"snip/internal/trace"
)

func testServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	svc := NewService(pfi.DefaultConfig())
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return svc, srv
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func post(t *testing.T, url string, body io.Reader) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(b)
}

// TestMissingGameParam pins the shared validation: every game-keyed
// endpoint answers 400 with the same message when ?game= is absent.
func TestMissingGameParam(t *testing.T) {
	_, srv := testServer(t)
	cases := []struct{ method, path string }{
		{"POST", "/v1/upload"},
		{"POST", "/v1/rebuild"},
		{"GET", "/v1/table"},
		{"GET", "/v1/status"},
	}
	for _, c := range cases {
		var resp *http.Response
		var body string
		if c.method == "GET" {
			resp, body = get(t, srv.URL+c.path)
		} else {
			resp, body = post(t, srv.URL+c.path, nil)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s without game: status %d, want 400", c.method, c.path, resp.StatusCode)
		}
		if !strings.Contains(body, "missing game") {
			t.Errorf("%s %s: body %q, want the shared missing-game message", c.method, c.path, body)
		}
	}
}

func TestUploadBadSeed(t *testing.T) {
	_, srv := testServer(t)
	resp, body := post(t, srv.URL+"/v1/upload?game=Colorphun&seed=banana", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(body, "bad seed") {
		t.Fatalf("body %q, want a bad-seed message", body)
	}
}

func TestUploadCorruptBody(t *testing.T) {
	_, srv := testServer(t)
	resp, body := post(t, srv.URL+"/v1/upload?game=Colorphun&seed=1",
		bytes.NewReader([]byte("this is not a gob stream")))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(body, "bad log") {
		t.Fatalf("body %q, want a bad-log message", body)
	}
}

func TestTableBeforeRebuild(t *testing.T) {
	_, srv := testServer(t)
	resp, body := get(t, srv.URL+"/v1/table?game=Colorphun")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if !strings.Contains(body, "no table") {
		t.Fatalf("body %q, want a no-table message", body)
	}
}

// TestMetricsEndpoint drives real traffic through the service and then
// checks the exposition: request counters per endpoint, error counters
// for the 4xx paths, and business counters for uploads and rebuilds.
func TestMetricsEndpoint(t *testing.T) {
	svc, srv := testServer(t)
	client := NewClient(srv.URL)

	dev := record(t, "Colorphun", 0xA1)
	if err := client.Upload("Colorphun", 0xA1, dev.EventLog); err != nil {
		t.Fatal(err)
	}
	if err := client.Rebuild("Colorphun"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.FetchTable("Colorphun"); err != nil {
		t.Fatal(err)
	}
	// One deliberate error: missing game on status.
	if resp, _ := get(t, srv.URL+"/v1/status"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status without game: %d", resp.StatusCode)
	}

	resp, body := get(t, srv.URL+"/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, want := range []string{
		`snip_cloud_requests_total{endpoint="upload"} 1`,
		`snip_cloud_requests_total{endpoint="rebuild"} 1`,
		`snip_cloud_requests_total{endpoint="table"} 1`,
		`snip_cloud_request_errors_total{endpoint="status"} 1`,
		"snip_cloud_uploads_total 1",
		"snip_cloud_rebuilds_total 1",
		"snip_cloud_tables_served_total 1",
		`snip_cloud_table_version{game="Colorphun"} 1`,
		// Rebuild-time PFI search surfaces in the same exposition.
		"snip_pfi_types_total",
		`snip_cloud_request_ns_count{endpoint="upload"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The snapshot agrees with what the handlers counted.
	snap := svc.Metrics().Snapshot()
	if snap.Counters["snip_cloud_uploads_total"] != 1 {
		t.Errorf("snapshot uploads %d, want 1", snap.Counters["snip_cloud_uploads_total"])
	}
	if snap.Counters["snip_cloud_records_total"] == 0 {
		t.Error("no records counted for the ingested upload")
	}
}

// TestClientURLEscaping pins the url.Values construction: a game name
// with reserved characters must arrive intact, not mangled into extra
// parameters.
func TestClientURLEscaping(t *testing.T) {
	var seenGame string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seenGame = r.URL.Query().Get("game")
	}))
	defer srv.Close()
	client := NewClient(srv.URL)
	weird := "a game&x=1?y#z"
	if err := client.Rebuild(weird); err != nil {
		t.Fatal(err)
	}
	if seenGame != weird {
		t.Fatalf("server saw game %q, want %q", seenGame, weird)
	}
	if _, err := url.ParseRequestURI(client.endpoint("/v1/rebuild", url.Values{"game": {weird}})); err != nil {
		t.Fatalf("endpoint builds an invalid URL: %v", err)
	}
}

// TestClientTimeoutConfigured pins the default-client hardening: the
// request bound lives on RetryPolicy.Timeout (per attempt, applied as a
// context deadline) rather than a hardcoded http.Client.Timeout, so
// callers can tune it without swapping transports.
func TestClientTimeoutConfigured(t *testing.T) {
	c := NewClient("http://127.0.0.1:0")
	if c.HTTP == http.DefaultClient {
		t.Fatal("client uses http.DefaultClient (shared mutable state)")
	}
	if c.HTTP.Timeout != 0 {
		t.Fatalf("http.Client.Timeout %v, want 0 (bound moved to RetryPolicy)", c.HTTP.Timeout)
	}
	if c.Retry.Timeout != DefaultClientTimeout {
		t.Fatalf("Retry.Timeout %v, want %v", c.Retry.Timeout, DefaultClientTimeout)
	}
}

// TestClientPolicyTimeoutEnforced proves the per-attempt deadline
// actually cancels a stalled server instead of hanging the upload.
func TestClientPolicyTimeoutEnforced(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)

	c := NewClient(srv.URL)
	c.Retry = RetryPolicy{MaxAttempts: 1, Timeout: 50 * time.Millisecond}
	start := time.Now()
	err := c.Rebuild("Colorphun")
	if err == nil {
		t.Fatal("expected timeout error from stalled server")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout not enforced: call took %v", elapsed)
	}
}

// TestHealthzEndpoint pins the SLO verdict surface: a fresh service is
// healthy (200, status ok), and a flood of bad uploads pushes the
// ingest error ratio over threshold and flips it to 503 degraded.
func TestHealthzEndpoint(t *testing.T) {
	_, srv := testServer(t)

	resp, body := get(t, srv.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh healthz status %d, want 200: %s", resp.StatusCode, body)
	}
	var hz healthzReply
	if err := json.Unmarshal([]byte(body), &hz); err != nil {
		t.Fatalf("healthz not JSON: %v", err)
	}
	if hz.Status != "ok" {
		t.Fatalf("fresh status %q, want ok", hz.Status)
	}
	if len(hz.Checks) == 0 {
		t.Fatal("healthz reported no checks")
	}

	// 25 corrupt uploads: error ratio 1.0 on an ingest endpoint, well
	// past the 10% budget and the 20-request judgment floor.
	for i := 0; i < 25; i++ {
		post(t, srv.URL+"/v1/upload?game=Colorphun&seed=1",
			bytes.NewReader([]byte("corrupt")))
	}
	resp, body = get(t, srv.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz status %d, want 503: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal([]byte(body), &hz); err != nil {
		t.Fatalf("degraded healthz not JSON: %v", err)
	}
	if hz.Status != "degraded" {
		t.Fatalf("status %q, want degraded", hz.Status)
	}
	failed := false
	for _, c := range hz.Checks {
		if !c.OK {
			failed = true
		}
	}
	if !failed {
		t.Fatal("degraded reply lists no failing check")
	}
}

// TestTracePropagation is the tentpole's cross-process assertion: an
// upload carrying X-Snip-Trace must surface a cloud-side ingest span
// under the SAME trace ID, parent-linked to the device-side span, both
// via Spans() and the /v1/tracez endpoint.
func TestTracePropagation(t *testing.T) {
	svc, srv := testServer(t)
	client := NewClient(srv.URL)

	dev := record(t, "Colorphun", 0xBEEF)
	sc := obs.Root(obs.NewTraceID(0xBEEF, obs.HashName("Colorphun/test")))
	if err := client.UploadTraced("Colorphun", 0xBEEF, dev.EventLog, sc); err != nil {
		t.Fatal(err)
	}

	var ingest *obs.Span
	for _, sp := range svc.Spans().Spans() {
		if sp.Trace == sc.Trace {
			s := sp
			ingest = &s
		}
	}
	if ingest == nil {
		t.Fatalf("no cloud span recorded under device trace %s", sc.Trace)
	}
	if ingest.Service != "cloud" {
		t.Errorf("ingest span service %q, want cloud", ingest.Service)
	}
	if ingest.Parent != sc.Span {
		t.Errorf("ingest span parent %s, want device span %s", ingest.Parent, sc.Span)
	}
	if ingest.Name != "cloud.upload" {
		t.Errorf("ingest span name %q, want cloud.upload", ingest.Name)
	}

	// The same span is queryable over the wire, filtered by trace ID.
	resp, body := get(t, srv.URL+"/v1/tracez?trace="+sc.Trace.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tracez status %d", resp.StatusCode)
	}
	var reply struct {
		Spans []obs.Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &reply); err != nil {
		t.Fatalf("tracez not JSON: %v\n%s", err, body)
	}
	if len(reply.Spans) != 1 || reply.Spans[0].Trace != sc.Trace {
		t.Fatalf("tracez filter returned %d spans for trace %s: %s", len(reply.Spans), sc.Trace, body)
	}
}

// TestUntracedRequestsRecordNoSpans: without the header the service
// must not invent trace IDs — the span ring stays empty.
func TestUntracedRequestsRecordNoSpans(t *testing.T) {
	svc, srv := testServer(t)
	client := NewClient(srv.URL)
	dev := record(t, "Colorphun", 7)
	if err := client.Upload("Colorphun", 7, dev.EventLog); err != nil {
		t.Fatal(err)
	}
	if n := svc.Spans().Len(); n != 0 {
		t.Fatalf("untraced upload recorded %d spans, want 0", n)
	}
}

// TestClientRetryLogging pins satellite 2: transient 5xx failures are
// logged via slog with the upload's trace ID, and the retry count is
// reported back on the BatchResult.
func TestClientRetryLogging(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	var logBuf bytes.Buffer
	c := NewClient(srv.URL)
	c.Retry = RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	c.SetLogger(slog.New(slog.NewTextHandler(&logBuf, nil)))

	sc := obs.Root(obs.NewTraceID(9, obs.HashName("retrylog")))
	dev := record(t, "Colorphun", 9)
	br, err := c.UploadBatchTraced("Colorphun",
		[]trace.SessionEvents{{Seed: 9, Log: dev.EventLog}}, sc)
	if err != nil {
		t.Fatalf("upload should succeed on 3rd attempt: %v", err)
	}
	if br.Retries != 2 {
		t.Errorf("Retries = %d, want 2", br.Retries)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "cloud client retry") {
		t.Errorf("retry not logged:\n%s", logs)
	}
	if !strings.Contains(logs, sc.Trace.String()) {
		t.Errorf("retry log missing trace ID %s:\n%s", sc.Trace, logs)
	}
	if got := strings.Count(logs, "cloud client retry"); got != 2 {
		t.Errorf("retry logged %d times, want 2", got)
	}
}

// TestPprofWired: the profiling endpoints answer on the service mux.
func TestPprofWired(t *testing.T) {
	_, srv := testServer(t)
	resp, body := get(t, srv.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index body missing profile listing:\n%.200s", body)
	}
}
