package cloud

import (
	"bytes"
	"testing"

	"snip/internal/memo"
	"snip/internal/trace"
)

// FuzzDecodeUpdate hammers the OTA table decoder — the bytes a device
// trusts enough to short-circuit its event handlers — with arbitrary
// input. It must error cleanly, never panic.
func FuzzDecodeUpdate(f *testing.F) {
	tab := memo.NewSnipTable(memo.Selection{})
	tab.Insert(&trace.Record{
		EventType: "touch", EventHash: 0x1234,
		Outputs: []trace.Field{{Name: "x", Category: trace.OutHistory, Size: 8, Value: 7}},
	})
	tab.Freeze()
	var buf bytes.Buffer
	if err := EncodeUpdate(&buf, &TableUpdate{Game: "Colorphun", Version: 3, Table: tab}); err != nil {
		f.Fatal(err)
	}
	wire := buf.Bytes()
	f.Add(wire)
	f.Add(wire[:len(wire)/2])
	flipped := bytes.Clone(wire)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))

	f.Fuzz(func(t *testing.T, data []byte) {
		up, err := DecodeUpdate(bytes.NewReader(data))
		if err == nil && (up == nil || up.Table == nil) {
			t.Fatal("nil update with nil error")
		}
	})
}
