package cloud

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"

	"snip/internal/obs"
	"snip/internal/trace"
	"snip/internal/units"
)

// Fleet telemetry aggregation: the cloud half of the device→cloud
// telemetry pipeline. Devices fold per-generation tallies into
// trace.TelemetryRecords and POST them here as SNIPTEL1 batches; the
// aggregator keeps bounded per-game/per-generation windowed rollups
// (obs.Window over the devices' *simulated* clock) and derives the two
// fleet signals the scaling roadmap reads:
//
//   - Drift: the effective-hit-rate delta between the live table
//     generation and its predecessor. "Effective" folds the guard's
//     windowed mispredict ratio into the raw windowed hit rate
//     (hit/lookups · (1 − mispredicts/checks)) — a poisoned table
//     whose keys still match serves the same raw hit rate but wrong
//     outputs, so raw hit rate alone cannot see the regression the
//     rebuild-on-drift policy must catch.
//   - Ingest pressure: windowed occupancy of the devices' upload and
//     telemetry queues — the admission-control input.
//
// Both surface as per-game gauges on /v1/metrics and, with the full
// rollups, as JSON on GET /v1/fleetz.

// Telemetry ingest bounds. Records are tiny, so the caps sit far below
// the session-batch ones; the aggregator itself is bounded too, so a
// hostile fleet cannot grow cloud memory without bound.
const (
	// MaxTelemetryBytes bounds a telemetry batch's compressed body.
	MaxTelemetryBytes = 1 << 20
	// MaxTelemetryDecodedBytes bounds its decompressed size.
	MaxTelemetryDecodedBytes = 4 << 20
	// maxTelemetryGames caps how many games the aggregator tracks;
	// batches for games beyond the cap are dropped (and counted).
	maxTelemetryGames = 64
	// maxTelemetryGenerations caps retained generation rollups per game;
	// the lowest generation is evicted when a newer one appears.
	maxTelemetryGenerations = 8
	// maxTelemetryDevices caps the per-generation distinct-device set.
	maxTelemetryDevices = 4096
	// telemetryBucketWidthUS / telemetryBuckets shape the windows: 64
	// five-second buckets of simulated time.
	telemetryBucketWidthUS = 5_000_000
	telemetryBuckets       = 64
)

// Verdict thresholds for the /v1/fleetz summary fields.
const (
	// driftThreshold is the effective-hit-rate delta beyond which a game
	// is judged drifting (live generation worse) or recovered (live
	// generation better, i.e. a rollback landed).
	driftThreshold = 0.10
	// pressureThreshold is the windowed queue occupancy beyond which
	// ingest is judged overloaded.
	pressureThreshold = 0.80
)

// genRollup accumulates one game's telemetry for one table generation.
type genRollup struct {
	generation int64
	records    int64
	sessions   int64
	events     int64
	lookups    int64
	hits       int64
	shadow     int64
	mispredict int64
	savedInstr int64
	maxP99NS   int64
	devices    map[int]struct{}
	// Energy ledger rollup, all zero when the fleet ran without the
	// device-side ledger. energyUJ always equals the sum of groupUJ
	// (devices fold conservatively); savedUJ is the short-circuit credit
	// and never part of energyUJ.
	energyUJ  float64
	groupUJ   [4]float64 // Fig. 2 order: Sensors, Memory, CPU, IPs
	lookupUJ  float64
	shadowUJ  float64
	savedUJ   float64
	wastedUJ  float64
	elapsedUS int64
	// hitWindow folds (hits, lookups) pairs; shadowWindow folds
	// (mispredicts, checks); energyWindow folds (net µJ, events) where
	// net = spent − credited — the regression signal's unit. All keyed by
	// the records' simulated time.
	hitWindow    *obs.Window
	shadowWindow *obs.Window
	energyWindow *obs.Window
}

func newGenRollup(gen int64) *genRollup {
	return &genRollup{
		generation:   gen,
		devices:      make(map[int]struct{}),
		hitWindow:    obs.NewWindow(telemetryBucketWidthUS, telemetryBuckets),
		shadowWindow: obs.NewWindow(telemetryBucketWidthUS, telemetryBuckets),
		energyWindow: obs.NewWindow(telemetryBucketWidthUS, telemetryBuckets),
	}
}

// effectiveHitRate is the windowed hit rate discounted by the windowed
// mispredict ratio — the drift signal's unit.
func (g *genRollup) effectiveHitRate() float64 {
	return g.hitWindow.Rate() * (1 - g.shadowWindow.Rate())
}

// gameTelemetry is one game's rollups plus live/predecessor tracking.
type gameTelemetry struct {
	gens map[int64]*genRollup
	// liveGen is the generation whose records carry the most recent
	// simulated time; prevGen the distinct generation that was live
	// before it (0 when unknown). A rollback moves liveGen *back* to the
	// restored generation once its post-rollback records arrive.
	liveGen, prevGen int64
	liveSimTimeUS    int64
	// pressureWindow folds (queued, capacity) occupancy pairs.
	pressureWindow *obs.Window
	// lastDevUJ remembers each device's last cumulative ledger total —
	// the conservation check: a device's DeviceTotalUJ may only grow, so
	// a decrease means lost or reordered energy accounting. Bounded like
	// the per-generation device sets; violations counts the breaks.
	lastDevUJ          map[int]float64
	monotoneViolations int64
}

// telemetryAggregator is the bounded cloud-side store. One mutex is
// plenty: ingest folds a handful of integers per record, and the
// windows themselves are lock-free.
type telemetryAggregator struct {
	mu      sync.Mutex
	games   map[string]*gameTelemetry
	batches int64
	records int64
}

func newTelemetryAggregator() *telemetryAggregator {
	return &telemetryAggregator{games: make(map[string]*gameTelemetry)}
}

// ingest folds one decoded batch. Returns false when the game cap
// rejects it.
func (a *telemetryAggregator) ingest(game string, recs []trace.TelemetryRecord) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	gt, ok := a.games[game]
	if !ok {
		if len(a.games) >= maxTelemetryGames {
			return false
		}
		gt = &gameTelemetry{
			gens:           make(map[int64]*genRollup),
			pressureWindow: obs.NewWindow(telemetryBucketWidthUS, telemetryBuckets),
			lastDevUJ:      make(map[int]float64),
		}
		a.games[game] = gt
	}
	a.batches++
	for i := range recs {
		rec := &recs[i]
		g, ok := gt.gens[rec.Generation]
		if !ok {
			g = newGenRollup(rec.Generation)
			gt.gens[rec.Generation] = g
			for len(gt.gens) > maxTelemetryGenerations {
				lowest := int64(-1)
				for gen := range gt.gens {
					if lowest < 0 || gen < lowest {
						lowest = gen
					}
				}
				delete(gt.gens, lowest)
			}
		}
		a.records++
		g.records++
		g.sessions += rec.Sessions
		g.events += rec.Events
		g.lookups += rec.Lookups
		g.hits += rec.Hits
		g.shadow += rec.ShadowChecks
		g.mispredict += rec.Mispredicts
		g.savedInstr += rec.SavedInstr
		g.energyUJ += rec.EnergyUJ
		g.groupUJ[0] += rec.SensorsUJ
		g.groupUJ[1] += rec.MemoryUJ
		g.groupUJ[2] += rec.CPUUJ
		g.groupUJ[3] += rec.IPsUJ
		g.lookupUJ += rec.LookupOverheadUJ
		g.shadowUJ += rec.ShadowVerifyUJ
		g.savedUJ += rec.SavedUJ
		g.wastedUJ += rec.WastedUJ
		g.elapsedUS += rec.ElapsedUS
		if rec.EnergyUJ != 0 || rec.SavedUJ != 0 {
			// Net spend: the short-circuit credit is subtracted so a
			// generation whose hits stop earning credits (poisoned keys
			// still match, mispredicts forfeit the credit) reads as more
			// expensive even when its raw spend is unchanged.
			g.energyWindow.Add(rec.SimTimeUS,
				int64(math.Round(rec.EnergyUJ-rec.SavedUJ)), rec.Events)
		}
		if rec.DeviceTotalUJ > 0 {
			if last, ok := gt.lastDevUJ[rec.Device]; ok {
				if rec.DeviceTotalUJ < last {
					gt.monotoneViolations++
				} else {
					gt.lastDevUJ[rec.Device] = rec.DeviceTotalUJ
				}
			} else if len(gt.lastDevUJ) < maxTelemetryDevices {
				gt.lastDevUJ[rec.Device] = rec.DeviceTotalUJ
			}
		}
		if rec.P99LookupNS > g.maxP99NS {
			g.maxP99NS = rec.P99LookupNS
		}
		if len(g.devices) < maxTelemetryDevices {
			g.devices[rec.Device] = struct{}{}
		}
		g.hitWindow.Add(rec.SimTimeUS, rec.Hits, rec.Lookups)
		g.shadowWindow.Add(rec.SimTimeUS, rec.Mispredicts, rec.ShadowChecks)
		gt.pressureWindow.Add(rec.SimTimeUS,
			rec.QueueDepth+rec.TelemetryPending, rec.QueueCap+rec.TelemetryCap)
		// Live-generation tracking: the generation carrying the most
		// recent simulated time is live; a strictly newer timestamp on a
		// different generation displaces it (a swap — or a rollback, once
		// the restored generation's records arrive). Ties keep the
		// incumbent, so interleaved flushes around a swap don't flap.
		if rec.Generation != gt.liveGen && rec.SimTimeUS > gt.liveSimTimeUS {
			gt.prevGen = gt.liveGen
			gt.liveGen = rec.Generation
		}
		if rec.SimTimeUS > gt.liveSimTimeUS {
			gt.liveSimTimeUS = rec.SimTimeUS
		}
	}
	return true
}

// drift returns the live-vs-predecessor effective-hit-rate delta for
// one game (positive = the live generation is worse — regression) and
// whether both sides had window data to judge.
func (gt *gameTelemetry) drift() (float64, bool) {
	live, okL := gt.gens[gt.liveGen]
	prev, okP := gt.gens[gt.prevGen]
	if !okL || !okP || gt.liveGen == gt.prevGen {
		return 0, false
	}
	if _, lc := live.hitWindow.Totals(); lc == 0 {
		return 0, false
	}
	if _, pc := prev.hitWindow.Totals(); pc == 0 {
		return 0, false
	}
	return prev.effectiveHitRate() - live.effectiveHitRate(), true
}

// FleetzGeneration is one generation's rollup in the /v1/fleetz reply.
type FleetzGeneration struct {
	Generation int64 `json:"generation"`
	Records    int64 `json:"records"`
	Sessions   int64 `json:"sessions"`
	Events     int64 `json:"events"`
	Lookups    int64 `json:"lookups"`
	Hits       int64 `json:"hits"`
	Shadow     int64 `json:"shadow_checks"`
	Mispredict int64 `json:"mispredicts"`
	SavedInstr int64 `json:"saved_instr"`
	Devices    int   `json:"devices"`
	MaxP99NS   int64 `json:"max_p99_lookup_ns"`
	// HitRate is cumulative hits/lookups; the windowed fields are over
	// the retained window only, and EffectiveHitRate discounts the
	// windowed mispredict ratio.
	HitRate            float64 `json:"hit_rate"`
	WindowedHitRate    float64 `json:"windowed_hit_rate"`
	WindowedMispredict float64 `json:"windowed_mispredict_ratio"`
	EffectiveHitRate   float64 `json:"effective_hit_rate"`
	// HitHistory is the per-bucket (hits, lookups) time series, oldest
	// first — what snipstat renders as a sparkline.
	HitHistory []obs.WindowBucket `json:"hit_history,omitempty"`
}

// FleetzGame is one game's fleet view in the /v1/fleetz reply.
type FleetzGame struct {
	Game           string  `json:"game"`
	LiveGeneration int64   `json:"live_generation"`
	PrevGeneration int64   `json:"prev_generation"`
	Drift          float64 `json:"drift"`
	// DriftVerdict is "steady", "drifting" (live generation's effective
	// hit rate trails its predecessor by more than the threshold) or
	// "recovered" (live leads by more than the threshold — a rollback or
	// healthy rebuild landed).
	DriftVerdict string  `json:"drift_verdict"`
	Pressure     float64 `json:"pressure"`
	// PressureVerdict is "ok" or "overloaded".
	PressureVerdict string             `json:"pressure_verdict"`
	Generations     []FleetzGeneration `json:"generations"`
}

// FleetzReply is the GET /v1/fleetz JSON schema.
type FleetzReply struct {
	Batches int64        `json:"telemetry_batches"`
	Records int64        `json:"telemetry_records"`
	Games   []FleetzGame `json:"games"`
}

// Fleetz snapshots the telemetry aggregator — the same view served at
// GET /v1/fleetz. Games and generations are sorted for stable output.
func (s *Service) Fleetz() FleetzReply {
	a := s.tel
	a.mu.Lock()
	defer a.mu.Unlock()
	reply := FleetzReply{Batches: a.batches, Records: a.records, Games: []FleetzGame{}}
	names := make([]string, 0, len(a.games))
	for name := range a.games {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		gt := a.games[name]
		fg := FleetzGame{
			Game:           name,
			LiveGeneration: gt.liveGen,
			PrevGeneration: gt.prevGen,
			Pressure:       gt.pressureWindow.Rate(),
		}
		fg.Drift, _ = gt.drift()
		fg.DriftVerdict = "steady"
		if fg.Drift > driftThreshold {
			fg.DriftVerdict = "drifting"
		} else if fg.Drift < -driftThreshold {
			fg.DriftVerdict = "recovered"
		}
		fg.PressureVerdict = "ok"
		if fg.Pressure > pressureThreshold {
			fg.PressureVerdict = "overloaded"
		}
		gens := make([]int64, 0, len(gt.gens))
		for gen := range gt.gens {
			gens = append(gens, gen)
		}
		sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
		for _, gen := range gens {
			g := gt.gens[gen]
			fgen := FleetzGeneration{
				Generation: g.generation, Records: g.records,
				Sessions: g.sessions, Events: g.events,
				Lookups: g.lookups, Hits: g.hits,
				Shadow: g.shadow, Mispredict: g.mispredict,
				SavedInstr: g.savedInstr, Devices: len(g.devices),
				MaxP99NS:           g.maxP99NS,
				WindowedHitRate:    g.hitWindow.Rate(),
				WindowedMispredict: g.shadowWindow.Rate(),
				EffectiveHitRate:   g.effectiveHitRate(),
				HitHistory:         g.hitWindow.Snapshot(),
			}
			if g.lookups > 0 {
				fgen.HitRate = float64(g.hits) / float64(g.lookups)
			}
			fg.Generations = append(fg.Generations, fgen)
		}
		reply.Games = append(reply.Games, fg)
	}
	return reply
}

// updateFleetGauges refreshes the per-game fleet gauges after an
// ingest: windowed hit rate of the live generation, the drift signal
// and the ingest-pressure signal, all in permille so the integer gauge
// keeps three digits of resolution (drift may be negative).
func (s *Service) updateFleetGauges(game string) {
	a := s.tel
	a.mu.Lock()
	gt, ok := a.games[game]
	if !ok {
		a.mu.Unlock()
		return
	}
	var hitRate, netPerEventUJ, savedFrac float64
	if live, ok := gt.gens[gt.liveGen]; ok {
		hitRate = live.effectiveHitRate()
		if sum, cnt := live.energyWindow.Totals(); cnt > 0 {
			netPerEventUJ = float64(sum) / float64(cnt)
		}
		if denom := live.energyUJ + live.savedUJ; denom > 0 {
			savedFrac = live.savedUJ / denom
		}
	}
	drift, _ := gt.drift()
	regression, _ := gt.energyRegression()
	pressure := gt.pressureWindow.Rate()
	a.mu.Unlock()
	s.reg.Gauge(`snip_cloud_fleet_hit_rate_permille{game="`+game+`"}`,
		"live generation's windowed effective hit rate, in permille").Set(int64(hitRate * 1000))
	s.reg.Gauge(`snip_cloud_fleet_drift_permille{game="`+game+`"}`,
		"effective-hit-rate drift of the live table generation vs its predecessor, in permille (positive = regression)").Set(int64(drift * 1000))
	s.reg.Gauge(`snip_cloud_fleet_ingest_pressure_permille{game="`+game+`"}`,
		"windowed device upload+telemetry queue occupancy, in permille").Set(int64(pressure * 1000))
	s.reg.Gauge(`snip_cloud_fleet_energy_per_event_nj{game="`+game+`"}`,
		"live generation's windowed net modeled energy per event (spend minus short-circuit credit), in nanojoules").Set(int64(netPerEventUJ * 1000))
	s.reg.Gauge(`snip_cloud_fleet_energy_regression_permille{game="`+game+`"}`,
		"net energy-per-event delta of the live table generation vs its predecessor, in permille (positive = live costs more)").Set(int64(regression * 1000))
	s.reg.Gauge(`snip_cloud_fleet_energy_saved_permille{game="`+game+`"}`,
		"live generation's short-circuit credit as a fraction of spend plus credit, in permille").Set(int64(savedFrac * 1000))
}

// handleTelemetry ingests a SNIPTEL1 telemetry batch (?game=G).
func (s *Service) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	game, ok := gameParam(w, r)
	if !ok {
		return
	}
	if !s.admit(w, PriorityTelemetry, game) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxTelemetryBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.met.rejectedOversize.Inc()
			http.Error(w, "telemetry too large", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	batch, err := trace.DecodeTelemetryLimit(bytes.NewReader(body), MaxTelemetryDecodedBytes)
	if err != nil {
		if errors.Is(err, trace.ErrBatchTooLarge) {
			s.met.rejectedOversize.Inc()
			http.Error(w, "telemetry decoded size exceeds limit", http.StatusRequestEntityTooLarge)
			return
		}
		s.met.rejectedCorrupt.Inc()
		http.Error(w, "bad telemetry: "+err.Error(), http.StatusBadRequest)
		return
	}
	if batch.Game != "" && batch.Game != game {
		http.Error(w, fmt.Sprintf("telemetry game %q != %q", batch.Game, game), http.StatusBadRequest)
		return
	}
	if len(batch.Records) == 0 {
		http.Error(w, "empty telemetry batch", http.StatusBadRequest)
		return
	}
	if !s.tel.ingest(game, batch.Records) {
		s.met.telemetryDropped.Add(int64(len(batch.Records)))
		http.Error(w, "telemetry game limit reached", http.StatusTooManyRequests)
		return
	}
	s.met.telemetryBatches.Inc()
	s.met.telemetryRecords.Add(int64(len(batch.Records)))
	s.updateFleetGauges(game)
	fmt.Fprintf(w, "ok records=%d\n", len(batch.Records))
}

// handleFleetz serves the aggregated fleet view; ?game=G filters to
// one game and ?limit=N caps the generations returned per game (newest
// retained). A present-but-empty game or a non-positive limit is the
// caller's bug and gets a 400, not a silently unfiltered reply.
func (s *Service) handleFleetz(w http.ResponseWriter, r *http.Request) {
	game, ok := gameFilterParam(w, r)
	if !ok {
		return
	}
	limit, ok := limitParam(w, r)
	if !ok {
		return
	}
	reply := s.Fleetz()
	if game != "" {
		filtered := reply.Games[:0]
		for _, g := range reply.Games {
			if g.Game == game {
				filtered = append(filtered, g)
			}
		}
		reply.Games = filtered
	}
	if limit > 0 {
		for i := range reply.Games {
			if gens := reply.Games[i].Generations; len(gens) > limit {
				reply.Games[i].Generations = gens[len(gens)-limit:]
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(reply)
}

// gameFilterParam reads the optional ?game= filter. Unlike gameParam
// (which requires the value), absence is fine — but a present-and-empty
// "?game=" is rejected with a 400: the caller asked for a filter and
// named nothing, which would otherwise read as "no filter" and return
// every game.
func gameFilterParam(w http.ResponseWriter, r *http.Request) (string, bool) {
	vals, present := r.URL.Query()["game"]
	if !present {
		return "", true
	}
	if vals[0] == "" {
		http.Error(w, "empty game", http.StatusBadRequest)
		return "", false
	}
	return vals[0], true
}

// limitParam reads the optional ?limit= cap (0 = uncapped); a value
// that does not parse as a positive integer gets a 400.
func limitParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	lq := r.URL.Query().Get("limit")
	if lq == "" {
		return 0, true
	}
	n, err := strconv.Atoi(lq)
	if err != nil || n < 1 {
		http.Error(w, "bad limit", http.StatusBadRequest)
		return 0, false
	}
	return n, true
}

// UploadTelemetry ships a device's folded telemetry records to the
// cloud as one SNIPTEL1 batch. Same transport contract as batch
// uploads: bounded retry on transient failures, trace propagation via
// sc, wire bytes and retry count reported either way.
func (c *Client) UploadTelemetry(game string, recs []trace.TelemetryRecord, sc obs.SpanContext) (BatchResult, error) {
	var buf bytes.Buffer
	if err := trace.EncodeTelemetry(&buf, &trace.TelemetryBatch{Game: game, Records: recs}); err != nil {
		return BatchResult{}, err
	}
	u := c.endpoint("/v1/telemetry", url.Values{"game": {game}})
	resp, retries, err := c.do(http.MethodPost, u, "application/octet-stream", buf.Bytes(), sc)
	if err != nil {
		return BatchResult{Retries: retries}, err
	}
	defer resp.Body.Close()
	return BatchResult{Wire: units.Size(buf.Len()), Retries: retries}, errFromResponse(resp)
}
