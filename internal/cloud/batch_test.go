package cloud

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"snip/internal/obs"
	"snip/internal/pfi"
	"snip/internal/trace"
)

// TestBatchUploadMatchesSequential is the ingest-equivalence contract:
// one gzip'd batch must leave the profiler in exactly the state that the
// same sessions uploaded one by one would, because sessions replay in
// upload order either way.
func TestBatchUploadMatchesSequential(t *testing.T) {
	seeds := []uint64{0xA1, 0xA2, 0xA3}
	var sessions []trace.SessionEvents
	for _, s := range seeds {
		sessions = append(sessions, trace.SessionEvents{Seed: s, Log: record(t, "Colorphun", s).EventLog})
	}

	// Sequential uploads.
	_, seqSrv := testServer(t)
	seq := NewClient(seqSrv.URL)
	for i, s := range seeds {
		if err := seq.Upload("Colorphun", s, sessions[i].Log); err != nil {
			t.Fatal(err)
		}
	}
	_, seqStatus := get(t, seqSrv.URL+"/v1/status?game=Colorphun")

	// One batch upload.
	batSvc, batSrv := testServer(t)
	bat := NewClient(batSrv.URL)
	wire, err := bat.UploadBatch("Colorphun", sessions)
	if err != nil {
		t.Fatal(err)
	}
	if wire <= 0 {
		t.Fatalf("wire size %v", wire)
	}
	_, batStatus := get(t, batSrv.URL+"/v1/status?game=Colorphun")

	if seqStatus != batStatus {
		t.Fatalf("batched profile diverged:\n  sequential: %s  batch:      %s", seqStatus, batStatus)
	}

	// The batch is smaller on the wire than the per-session uploads.
	var raw int64
	for i := range sessions {
		sz, err := trace.EventsOnlyTransferSize(sessions[i].Log)
		if err != nil {
			t.Fatal(err)
		}
		raw += int64(sz)
	}
	if int64(wire) >= raw {
		t.Fatalf("batch (%d B) not smaller than %d B of per-session uploads", wire, raw)
	}

	// Metrics: 3 sessions counted as uploads, 1 batch, bytes recorded.
	snap := batSvc.Metrics().Snapshot()
	if got := snap.Counters["snip_cloud_uploads_total"]; got != 3 {
		t.Errorf("uploads %d, want 3", got)
	}
	if got := snap.Counters["snip_cloud_upload_batches_total"]; got != 1 {
		t.Errorf("batches %d, want 1", got)
	}
	if got := snap.Counters["snip_cloud_upload_batch_bytes_total"]; got != int64(wire) {
		t.Errorf("batch bytes %d, want %d", got, wire)
	}
}

func TestBatchUploadRejectsBadInput(t *testing.T) {
	_, srv := testServer(t)
	c := NewClient(srv.URL)

	// Empty batch.
	if _, err := c.UploadBatch("Colorphun", nil); err == nil || !strings.Contains(err.Error(), "empty batch") {
		t.Fatalf("empty batch error %v", err)
	}
	// Corrupt body.
	resp, body := post(t, srv.URL+"/v1/upload-batch?game=Colorphun",
		bytes.NewReader([]byte("definitely not a batch")))
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "bad batch") {
		t.Fatalf("corrupt batch: status %d body %q", resp.StatusCode, body)
	}
	// Game mismatch between query and payload.
	var buf bytes.Buffer
	log := record(t, "Colorphun", 7).EventLog
	if err := trace.EncodeBatch(&buf, &trace.SessionBatch{
		Game: "Colorphun", Sessions: []trace.SessionEvents{{Seed: 7, Log: log}},
	}); err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, srv.URL+"/v1/upload-batch?game=MemoryGame", &buf)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "batch game") {
		t.Fatalf("game mismatch: status %d body %q", resp.StatusCode, body)
	}
}

// TestBatchCodecRoundtrip pins the gzip'd wire form.
func TestBatchCodecRoundtrip(t *testing.T) {
	log := record(t, "Colorphun", 9).EventLog
	in := &trace.SessionBatch{Game: "Colorphun", Sessions: []trace.SessionEvents{
		{Seed: 9, Log: log}, {Seed: 10, Log: log},
	}}
	var buf bytes.Buffer
	if err := trace.EncodeBatch(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := trace.DecodeBatch(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if out.Game != in.Game || len(out.Sessions) != 2 || out.Sessions[0].Seed != 9 {
		t.Fatalf("roundtrip mangled batch: %+v", out)
	}
	if len(out.Sessions[1].Log.Events) != len(log.Events) {
		t.Fatal("events lost in roundtrip")
	}
	if _, err := trace.DecodeBatch(bytes.NewReader([]byte("SNIPEVTS1junk"))); err == nil {
		t.Fatal("wrong magic accepted")
	}
}

// flakyHandler fails the first n requests with 503, then delegates.
type flakyHandler struct {
	remaining atomic.Int64
	next      http.Handler
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.remaining.Add(-1) >= 0 {
		http.Error(w, "synthetic outage", http.StatusServiceUnavailable)
		return
	}
	f.next.ServeHTTP(w, r)
}

func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

// TestClientRetriesTransient5xx: the client must ride out a transient
// outage within its retry budget and count every retry attempt.
func TestClientRetriesTransient5xx(t *testing.T) {
	svc := NewService(pfi.DefaultConfig())
	flaky := &flakyHandler{next: svc.Handler()}
	flaky.remaining.Store(2)
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	reg := obs.NewRegistry()
	c := NewClient(srv.URL)
	c.Retry = fastRetry(3)
	c.SetMetrics(reg)

	if err := c.Upload("Colorphun", 0xA1, record(t, "Colorphun", 0xA1).EventLog); err != nil {
		t.Fatalf("upload did not survive 2 transient 503s: %v", err)
	}
	if got := reg.Snapshot().Counters["snip_cloud_client_retries_total"]; got != 2 {
		t.Fatalf("retry counter %d, want 2", got)
	}
}

// TestClientRetryExhaustion: a persistent outage surfaces after the
// bounded attempts, not an infinite loop.
func TestClientRetryExhaustion(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	c.Retry = fastRetry(3)
	err := c.Rebuild("Colorphun")
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err %v, want bounded give-up", err)
	}
}

// TestClientNoRetryOn4xx: client errors are not transient; retrying them
// would only amplify load and latency.
func TestClientNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad request", http.StatusBadRequest)
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	c.Retry = fastRetry(5)
	if err := c.Rebuild("Colorphun"); err == nil {
		t.Fatal("4xx swallowed")
	}
	if calls.Load() != 1 {
		t.Fatalf("4xx retried: %d calls", calls.Load())
	}
}

// TestRetryBackoffBounds pins the jittered exponential shape.
func TestRetryBackoffBounds(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	for attempt := 1; attempt <= 6; attempt++ {
		cap := p.BaseDelay << (attempt - 1)
		if cap > p.MaxDelay {
			cap = p.MaxDelay
		}
		for i := 0; i < 50; i++ {
			d := p.backoff(attempt)
			if d <= 0 || d > cap {
				t.Fatalf("attempt %d: backoff %v outside (0, %v]", attempt, d, cap)
			}
		}
	}
}
