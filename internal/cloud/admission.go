package cloud

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"snip/internal/obs"
)

// Overload survival: every ingest request passes an admission check
// before any decode or queueing work. The shard queues were already
// bounded (a full queue answers 429), but that backstop treats all
// traffic alike — under sustained overload the guard reports and
// telemetry that operators need most are shed with the same odds as the
// bulk uploads causing the overload. The admission controller fixes the
// ordering: traffic is classed by priority, bulk load is gated by
// per-game token-bucket quotas and shed first as the queues fill, and
// every 429 carries a Retry-After so the fleet's backoff converges
// instead of thundering. All tracked requests land in a per-class
// ledger where offered = accepted + shed + dropped holds by
// construction — the same conservation identity the device-side ledger
// keeps, so shed load is accounted, never silently lost.

// Priority orders the ingest classes for load shedding: lower values
// survive longer. Guard/health traffic is never shed — when the service
// is drowning, the breaker reports and health probes are exactly what
// must get through.
type Priority uint8

const (
	// PriorityGuard covers fleet guard reports and health probes:
	// admitted unconditionally.
	PriorityGuard Priority = iota
	// PriorityTelemetry covers device telemetry: shed only when the
	// owning shard's queue is nearly saturated.
	PriorityTelemetry
	// PriorityBulk covers upload, upload-batch and rebuild — the paths
	// that create the load. Quota-gated and shed first.
	PriorityBulk
	numPriorities
)

// priorityNames are the class labels used in metrics and /v1/overloadz.
var priorityNames = [numPriorities]string{"guard", "telemetry", "bulk"}

// String returns the class label ("guard", "telemetry", "bulk").
func (p Priority) String() string {
	if int(p) < len(priorityNames) {
		return priorityNames[p]
	}
	return "unknown"
}

// Occupancy thresholds: the fraction of the owning shard's queue that
// must be full before a class is shed at admission. Bulk goes first,
// telemetry only near saturation, guard never. The gap between the two
// is the design: by the time telemetry sheds, bulk has been shedding
// for a quarter of the queue already.
const (
	bulkShedOccupancy      = 0.75
	telemetryShedOccupancy = 0.95
)

// Autoscale verdict thresholds, derived from the fleet SLO envelope
// (internal/fleet/health.go) and the telemetry pressure monitor: a
// device retries a shed batch, so a sustained bulk shed ratio of
// 1/MaxAttempts (~0.33 at the default 3-attempt RetryPolicy) pushes
// retries-per-batch past SLOConfig.MaxRetriesPerBatch (1.0) and breaks
// the SLO, and the drift monitor flags a shard "hot" at 0.80 windowed
// occupancy (pressureThreshold). scale_up fires at
// signal = occupancy x shed ratio = 0.80 x 0.33 ~ 0.25 — before the
// fleet SLO breaks, not after.
const (
	signalScaleUp = 0.25
	// shedRatioDecay is the EWMA weight of one bulk admission outcome;
	// ~1/decay recent requests dominate the shed ratio.
	shedRatioDecay = 0.02
)

// QuotaConfig bounds each game's bulk ingest rate with a token bucket:
// RatePerSec tokens refill continuously up to Burst, one bulk request
// takes one token, and an empty bucket sheds with Retry-After set to
// the refill horizon. The zero value disables quotas (unlimited).
type QuotaConfig struct {
	// RatePerSec is the sustained bulk requests/second allowed per game.
	// <= 0 disables the quota.
	RatePerSec float64
	// Burst is the bucket capacity (defaults to RatePerSec when unset).
	Burst float64
}

func (q QuotaConfig) enabled() bool { return q.RatePerSec > 0 }

// tokenBucket is one game's quota state. Guarded by admission.mu; the
// take path is allocation-free after the bucket exists.
type tokenBucket struct {
	tokens float64
	last   time.Time
	shed   int64
}

// classLedger is one priority class's conservation counters. Every
// tracked request increments offered and exactly one of the outcomes,
// so offered = accepted + shed + dropped holds at any instant.
type classLedger struct {
	offered  *obs.Counter
	accepted *obs.Counter
	shed     *obs.Counter
	dropped  *obs.Counter
}

// admission is the controller: quota buckets, the decayed bulk shed
// ratio feeding the autoscale signal, and the per-class ledger.
type admission struct {
	queueCap int
	quota    QuotaConfig
	now      func() time.Time // injectable clock for quota tests

	mu        sync.Mutex
	buckets   map[string]*tokenBucket
	shedRatio float64 // EWMA over recent bulk admission outcomes
	lastOcc   float64 // most recent occupancy seen by decide

	classes   [numPriorities]classLedger
	quotaShed *obs.Counter
	signalPM  *obs.Gauge
	occPM     *obs.Gauge
	shedPM    *obs.Gauge
}

func newAdmission(queueCap int, quota QuotaConfig, reg *obs.Registry) *admission {
	if quota.enabled() && quota.Burst <= 0 {
		quota.Burst = quota.RatePerSec
	}
	a := &admission{
		queueCap: queueCap,
		quota:    quota,
		now:      time.Now,
		buckets:  make(map[string]*tokenBucket),
		quotaShed: reg.Counter("snip_cloud_overload_quota_shed_total",
			"bulk requests shed by a per-game token-bucket quota"),
		signalPM: reg.Gauge("snip_cloud_overload_signal_permille",
			"autoscale signal (queue occupancy x decayed bulk shed ratio), in permille"),
		occPM: reg.Gauge("snip_cloud_overload_occupancy_permille",
			"owning-shard queue occupancy last seen at admission, in permille"),
		shedPM: reg.Gauge("snip_cloud_overload_shed_ratio_permille",
			"decayed bulk shed ratio over recent admissions, in permille"),
	}
	for p := Priority(0); p < numPriorities; p++ {
		l := `{class="` + p.String() + `"}`
		a.classes[p] = classLedger{
			offered:  reg.Counter("snip_cloud_overload_offered_total"+l, "ingest requests offered to this class"),
			accepted: reg.Counter("snip_cloud_overload_accepted_total"+l, "ingest requests accepted (status < 400)"),
			shed:     reg.Counter("snip_cloud_overload_shed_total"+l, "ingest requests shed with 429 + Retry-After"),
			dropped:  reg.Counter("snip_cloud_overload_dropped_total"+l, "ingest requests failed with a non-429 error status"),
		}
	}
	return a
}

// admitDecision is one admission check's outcome.
type admitDecision struct {
	allow      bool
	reason     string
	retryAfter time.Duration
}

// decide runs the admission check for one request given the owning
// shard's current queue occupancy (0..1). It does not touch the
// ledger — account records the final status once the handler is done,
// so the ledger also covers requests shed later by the queue backstop
// or failed in the handler itself.
func (a *admission) decide(pri Priority, game string, occupancy float64) admitDecision {
	a.mu.Lock()
	a.lastOcc = occupancy
	a.mu.Unlock()
	a.occPM.Set(int64(occupancy * 1000))
	switch pri {
	case PriorityGuard:
		return admitDecision{allow: true}
	case PriorityTelemetry:
		if occupancy >= telemetryShedOccupancy {
			return admitDecision{reason: "telemetry shed near saturation", retryAfter: time.Second}
		}
		return admitDecision{allow: true}
	}
	// Bulk: quota first (deterministic, independent of load), then the
	// occupancy gate.
	if a.quota.enabled() {
		if ok, wait := a.takeToken(game); !ok {
			a.quotaShed.Inc()
			return admitDecision{reason: "quota exceeded for game " + game, retryAfter: wait}
		}
	}
	if occupancy >= bulkShedOccupancy {
		return admitDecision{reason: "bulk shed under queue pressure", retryAfter: time.Second}
	}
	return admitDecision{allow: true}
}

// takeToken consumes one quota token for game; on an empty bucket it
// reports the wait until the next token refills. Allocation-free once
// the game's bucket exists.
func (a *admission) takeToken(game string) (ok bool, wait time.Duration) {
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b, exists := a.buckets[game]
	if !exists {
		b = &tokenBucket{tokens: a.quota.Burst, last: now}
		a.buckets[game] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * a.quota.RatePerSec
		if b.tokens > a.quota.Burst {
			b.tokens = a.quota.Burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	b.shed++
	deficit := 1 - b.tokens
	wait = time.Duration(deficit / a.quota.RatePerSec * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	if wait > 8*time.Second {
		wait = 8 * time.Second
	}
	return false, wait
}

// account records one tracked request's final status in its class
// ledger: offered plus exactly one of accepted (< 400), shed (429) or
// dropped (any other error status). Bulk outcomes also feed the
// decayed shed ratio behind the autoscale signal.
func (a *admission) account(pri Priority, status int) {
	l := &a.classes[pri]
	l.offered.Inc()
	shedSample := 0.0
	switch {
	case status == http.StatusTooManyRequests:
		l.shed.Inc()
		shedSample = 1.0
	case status < 400:
		l.accepted.Inc()
	default:
		l.dropped.Inc()
	}
	if pri != PriorityBulk {
		return
	}
	a.mu.Lock()
	a.shedRatio += shedRatioDecay * (shedSample - a.shedRatio)
	signal := a.lastOcc * a.shedRatio
	ratio := a.shedRatio
	a.mu.Unlock()
	a.shedPM.Set(int64(ratio * 1000))
	a.signalPM.Set(int64(signal * 1000))
}

// writeShed answers a shed request: 429 with Retry-After in whole
// seconds (minimum 1), so even a dumb client knows when to come back.
func writeShed(w http.ResponseWriter, msg string, retryAfter time.Duration) {
	secs := int(retryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, msg, http.StatusTooManyRequests)
}

// occupancy returns the owning shard's current queue fill (0..1).
func (s *Service) occupancy(game string) float64 {
	sh := s.shardFor(game)
	return float64(len(sh.queue)) / float64(sh.cap)
}

// maxOccupancy returns the fullest shard's queue fill (0..1).
func (s *Service) maxOccupancy() float64 {
	occ := 0.0
	for _, sh := range s.shards {
		if o := float64(len(sh.queue)) / float64(sh.cap); o > occ {
			occ = o
		}
	}
	return occ
}

// admit runs the admission check for one tracked ingest request; on a
// shed it writes the 429 + Retry-After and returns false.
func (s *Service) admit(w http.ResponseWriter, pri Priority, game string) bool {
	dec := s.adm.decide(pri, game, s.occupancy(game))
	if dec.allow {
		return true
	}
	writeShed(w, "overloaded: "+dec.reason, dec.retryAfter)
	return false
}

// OverloadClass is one priority class's row in /v1/overloadz: the
// conservation ledger (offered = accepted + shed + dropped).
type OverloadClass struct {
	Class    string `json:"class"`
	Offered  int64  `json:"offered"`
	Accepted int64  `json:"accepted"`
	Shed     int64  `json:"shed"`
	Dropped  int64  `json:"dropped"`
}

// overloadQuotaGame is one game's quota bucket state in /v1/overloadz.
type overloadQuotaGame struct {
	Game   string  `json:"game"`
	Tokens float64 `json:"tokens"`
	Shed   int64   `json:"shed"`
}

// overloadzReply is the GET /v1/overloadz JSON schema.
type overloadzReply struct {
	QueueCap   int                 `json:"queue_cap"`
	Shards     int                 `json:"shards"`
	Occupancy  float64             `json:"occupancy"`
	ShedRatio  float64             `json:"shed_ratio"`
	Signal     float64             `json:"signal"`
	Verdict    string              `json:"verdict"` // "steady" | "hold" | "scale_up"
	QuotaRate  float64             `json:"quota_rate_per_sec,omitempty"`
	QuotaBurst float64             `json:"quota_burst,omitempty"`
	QuotaShed  int64               `json:"quota_shed"`
	Classes    []OverloadClass     `json:"classes"`
	Quotas     []overloadQuotaGame `json:"quotas,omitempty"`
}

// Overloadz snapshots the overload view served at /v1/overloadz — the
// feed for snipstat's overload pane and fleetbench's cloud-side
// conservation check.
func (s *Service) Overloadz() overloadzReply {
	a := s.adm
	occ := s.maxOccupancy()
	a.mu.Lock()
	ratio := a.shedRatio
	games := make([]string, 0, len(a.buckets))
	for g := range a.buckets {
		games = append(games, g)
	}
	sort.Strings(games)
	quotas := make([]overloadQuotaGame, 0, len(games))
	for _, g := range games {
		b := a.buckets[g]
		quotas = append(quotas, overloadQuotaGame{Game: g, Tokens: b.tokens, Shed: b.shed})
	}
	a.mu.Unlock()
	signal := occ * ratio
	verdict := "steady"
	switch {
	case signal >= signalScaleUp:
		verdict = "scale_up"
	case ratio > 0 || occ >= bulkShedOccupancy:
		verdict = "hold"
	}
	reply := overloadzReply{
		QueueCap:   a.queueCap,
		Shards:     len(s.shards),
		Occupancy:  occ,
		ShedRatio:  ratio,
		Signal:     signal,
		Verdict:    verdict,
		QuotaRate:  a.quota.RatePerSec,
		QuotaBurst: a.quota.Burst,
		QuotaShed:  a.quotaShed.Value(),
		Quotas:     quotas,
	}
	for p := Priority(0); p < numPriorities; p++ {
		l := &a.classes[p]
		reply.Classes = append(reply.Classes, OverloadClass{
			Class:    p.String(),
			Offered:  l.offered.Value(),
			Accepted: l.accepted.Value(),
			Shed:     l.shed.Value(),
			Dropped:  l.dropped.Value(),
		})
	}
	return reply
}

func (s *Service) handleOverloadz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Overloadz())
}

// endpointClass maps tracked ingest endpoints to their priority class;
// the instrument middleware feeds the per-class ledger from it.
var endpointClass = map[string]Priority{
	"upload":       PriorityBulk,
	"upload-batch": PriorityBulk,
	"rebuild":      PriorityBulk,
	"telemetry":    PriorityTelemetry,
	"guard":        PriorityGuard,
	"healthz":      PriorityGuard,
}
