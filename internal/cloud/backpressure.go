package cloud

import (
	"errors"
	"net/http"
	"strconv"
	"time"
)

// Client-side half of the overload contract: when the cloud sheds with
// 429 + Retry-After, a well-behaved device backs off for the advertised
// horizon (plus jitter, so a synchronized fleet desynchronizes) and
// bounds its persistence with a retry budget refilled by successes.
// Without the budget, a fleet of devices all retrying shed batches is
// itself the overload; with it, sustained shedding converges to each
// device dropping its batch after a bounded number of attempts and
// counting the loss honestly.

// ErrShed marks an upload that the cloud deliberately shed (HTTP 429)
// and the client gave up on — either the retry budget ran out or every
// attempt was answered 429. Callers distinguish it from corruption or
// network failure with errors.Is.
var ErrShed = errors.New("shed by cloud admission control")

// RetryBudget bounds a device's 429-driven retries SRE-style: a retry
// consumes one token, a successful upload refills RefillPerSuccess
// back (capped at the initial budget). A device that keeps succeeding
// earns the right to ride out occasional sheds; one that is being
// persistently shed runs dry and starts dropping instead of hammering.
// Not safe for concurrent use — each device owns its budget and the
// fleet scheduler runs one device on one worker at a time.
type RetryBudget struct {
	tokens float64
	max    float64
	refill float64
}

// NewRetryBudget returns a budget holding max tokens, crediting
// refillPerSuccess per successful upload. max <= 0 defaults to 8,
// refillPerSuccess < 0 defaults to 0.5.
func NewRetryBudget(max, refillPerSuccess float64) *RetryBudget {
	if max <= 0 {
		max = 8
	}
	if refillPerSuccess < 0 {
		refillPerSuccess = 0.5
	}
	return &RetryBudget{tokens: max, max: max, refill: refillPerSuccess}
}

// Allow consumes one token for a retry; false means the budget is
// exhausted and the caller must stop retrying.
func (b *RetryBudget) Allow() bool {
	if b == nil {
		return true
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Credit refills the budget after a successful upload.
func (b *RetryBudget) Credit() {
	if b == nil {
		return
	}
	b.tokens += b.refill
	if b.tokens > b.max {
		b.tokens = b.max
	}
}

// Tokens returns the remaining budget (for tests and tallies).
func (b *RetryBudget) Tokens() float64 {
	if b == nil {
		return 0
	}
	return b.tokens
}

// CallControl carries per-call backpressure state through the client's
// retry loop. The Client is shared fleet-wide, so anything per-device —
// the retry budget, the deterministic jitter stream, the sim-time sleep
// — rides the call instead of the client. Nil fields fall back to the
// process defaults (no budget, math/rand jitter, wall-clock sleep).
type CallControl struct {
	// Budget, when non-nil, gates 429 retries; exhaustion makes the call
	// fail immediately with an ErrShed-wrapped error.
	Budget *RetryBudget
	// Sleep replaces time.Sleep for backoff waits. The fleet harness
	// installs a sim-time hook that accumulates virtual nanoseconds, so
	// a 100k-device overload run backs off deterministically without
	// wall-clock stalls.
	Sleep func(time.Duration)
	// Jitter returns a uniform int64 in [0, n); nil uses the process
	// RNG. A pre-split per-device source makes backoff deterministic.
	Jitter func(n int64) int64
}

func (ctl *CallControl) sleep(d time.Duration) {
	if ctl != nil && ctl.Sleep != nil {
		ctl.Sleep(d)
		return
	}
	time.Sleep(d)
}

// retryAfterDelay parses a 429's Retry-After header (whole seconds, the
// only form this service emits).
func retryAfterDelay(resp *http.Response) (time.Duration, bool) {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}
