#!/bin/sh
# ci.sh — the repository's full gate. Mirrors what a CI runner executes:
# static checks, a clean build, the full test suite, and the race
# detector over every package that spawns goroutines (the parallel
# engine and its consumers).
set -eu

cd "$(dirname "$0")"

echo "== go vet"
go vet ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (concurrent packages)"
go test -race ./internal/parallel ./internal/experiments ./internal/pfi ./internal/cloud .

echo "ci: all green"
