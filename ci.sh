#!/bin/sh
# ci.sh — the repository's full gate. Mirrors what a CI runner executes:
# static checks, a clean build, the full test suite, and the race
# detector over every package that spawns goroutines (the parallel
# engine and its consumers).
set -eu

cd "$(dirname "$0")"

echo "== go vet"
go vet ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (concurrent packages)"
go test -race ./internal/parallel ./internal/experiments ./internal/pfi ./internal/cloud ./internal/obs .

echo "== go test -race (fleet serving: shared table + device fleet + chaos)"
go test -race ./internal/fleet ./internal/memo ./internal/chaos

echo "== go test -race (tracing + telemetry + energy paths: span recording and fleet rollups under concurrent drains)"
go test -race -run 'Span|Trace|Healthz|Telemetry|Fleetz|Window|Energy|Ledger|Energyz' ./internal/obs ./internal/cloud ./internal/fleet ./internal/energy

echo "== go test -race (shard router + delta OTA: queue-routed ingest, update negotiation, multi-round swaps)"
go test -race -run 'Shard|Delta|Update|OTA' ./internal/cloud ./internal/memo ./internal/trace ./internal/fleet

echo "== go test -race (overload survival: admission control, quotas, 429 backpressure, shared scheduler)"
go test -race -run 'Overload|Shed|Quota|Backpressure' ./internal/cloud ./internal/fleet

echo "== fleet bench smoke (sharded cloud, multi-round delta OTA, then schema validation incl. health/SLO and delta accounting)"
go run ./cmd/fleetbench -devices 2,4 -sessions 2 -secs 5 -profile-sessions 2 \
	-shards 2 -refreshes 2 -delta-cap 4 \
	-out /tmp/snip_bench_fleet_smoke.json
go run ./cmd/fleetbench -validate /tmp/snip_bench_fleet_smoke.json
rm -f /tmp/snip_bench_fleet_smoke.json

echo "== shard sweep smoke (figures must be byte-identical at every shard count)"
go run ./cmd/fleetbench -shard-sweep 1,2,4 -shard-games 3 -shard-sessions 2 -secs 5 \
	-out /tmp/snip_bench_shards_smoke.json
go run ./cmd/fleetbench -validate /tmp/snip_bench_shards_smoke.json
rm -f /tmp/snip_bench_shards_smoke.json

echo "== fuzz smoke (ingest decoders must reject arbitrary bytes, never panic)"
go test -run '^$' -fuzz '^FuzzDecodeBatch$' -fuzztime 5s ./internal/trace
go test -run '^$' -fuzz '^FuzzDecodeEventsOnly$' -fuzztime 5s ./internal/trace
go test -run '^$' -fuzz '^FuzzDecodeTelemetry$' -fuzztime 5s ./internal/trace
go test -run '^$' -fuzz '^FuzzDecodeUpdate$' -fuzztime 5s ./internal/cloud
go test -run '^$' -fuzz '^FuzzLoadFlatTable$' -fuzztime 5s ./internal/memo
go test -run '^$' -fuzz '^FuzzDecodeDelta$' -fuzztime 5s ./internal/trace
go test -run '^$' -fuzz '^FuzzApplyDelta$' -fuzztime 5s ./internal/memo

echo "== chaos gate (all faults + mispredict guard under the race detector, zero panics)"
go run -race ./cmd/fleetbench -chaos all -chaos-seed 7 -shadow-rate 0.25 \
	-devices 4 -sessions 2 -secs 5 -profile-sessions 2 \
	-out /tmp/snip_bench_chaos_gate.json
go run ./cmd/fleetbench -validate /tmp/snip_bench_chaos_gate.json
rm -f /tmp/snip_bench_chaos_gate.json

echo "== overload smoke (5000 devices on the shared scheduler, tiny quota + queue: conservation on both ledgers, guard never shed)"
go run ./cmd/fleetbench -devices 5000 -sessions 1 -secs 2 -profile-sessions 2 \
	-ota=false -overload -shard-queue-cap 2 -quota-rate 2 -quota-burst 2 \
	-out /tmp/snip_bench_overload_smoke.json
go run ./cmd/fleetbench -validate /tmp/snip_bench_overload_smoke.json
rm -f /tmp/snip_bench_overload_smoke.json

echo "== allocation gate (memo lookup + metrics + span + telemetry-window + energy-ledger + post-delta-swap lookup + admission token-bucket + scheduler-claim hot paths must stay 0 allocs/op)"
# DeltaAppliedLookupHit serves from a table rebuilt via ApplyDelta: the
# patch step may allocate, the table it publishes must look up alloc-free.
alloc_out=$(go test -run '^$' -bench 'SnipTableLookupHit|SnipTableLookupMiss|FlatLookupHit|FlatLookupMiss|FlatLookupSweep|SharedLookupParallel|SharedLookupSpan|DeltaAppliedLookupHit|CounterInc|GaugeSet|HistogramObserve|HistogramObserveExemplar|SpanStartFinish|TracerRecord|WindowAdd|WindowObserveNil|LedgerEventCharge|LedgerAttribute|TokenBucketTake|SchedulerClaim' \
	-benchmem -benchtime 1000x ./internal/memo ./internal/obs ./internal/energy ./internal/cloud ./internal/fleet)
echo "$alloc_out"
bad=$(echo "$alloc_out" | awk '/allocs\/op/ && $(NF-1) + 0 > 0')
if [ -n "$bad" ]; then
	echo "allocation regression on the hot path:" >&2
	echo "$bad" >&2
	exit 1
fi

echo "== lookup regression gate (flat backend must stay within 10% of map, both measured now)"
# Gated at sizes past cache capacity, where the flat layout's advantage
# is structural; at 1k rows both backends are cache-resident and the
# winner flips with machine noise, so a threshold there only flaps.
go run ./cmd/fleetbench -lookup-sweep 32k,256k -sweep-ops 100000 -sweep-gate 1.10 \
	-out /tmp/snip_bench_lookup_gate.json
go run ./cmd/fleetbench -validate /tmp/snip_bench_lookup_gate.json
rm -f /tmp/snip_bench_lookup_gate.json

echo "ci: all green"
